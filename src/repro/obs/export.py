"""Diagnostics export: recorded telemetry → JSONL, timeline, timing summary.

Three artifacts cover the "why did this alarm fire?" workflow
(``docs/OBSERVABILITY.md`` walks through one):

* **JSONL** — one JSON object per event, ``kind``-discriminated, every
  numeric field a plain list/float. Machine-greppable, diffable, and
  round-trippable (:func:`read_jsonl` is the schema test's inverse).
* **Timeline** — a human-readable rendering of the run's *edges*: mode
  switches, alarm onsets/clears with the statistic-vs-threshold margin at
  onset, and degraded-delivery spans.
* **Timing summary** — per-stage latency aggregates in the
  ``BENCH_perf.json`` results shape (see :mod:`repro.obs.timing`).
"""

from __future__ import annotations

import json
from pathlib import Path

from .telemetry import RecordingTelemetry, TelemetryEvent

__all__ = ["to_records", "write_jsonl", "read_jsonl", "render_timeline", "export_run"]


def to_records(events) -> list[dict]:
    """Events (or a recording sink) as plain JSON-ready dicts, in order.

    The in-memory counterpart of :func:`write_jsonl`: campaign cells embed
    the records directly in their content-addressed artifacts instead of
    owning a file handle.
    """
    if isinstance(events, RecordingTelemetry):
        events = events.events
    return [
        event.to_record() if isinstance(event, TelemetryEvent) else dict(event)
        for event in events
    ]


def write_jsonl(events, path) -> int:
    """Write *events* (or a recording sink) to *path*; return the line count.

    Accepts either an iterable of :class:`TelemetryEvent` or a
    :class:`RecordingTelemetry` whose ``events`` are taken.
    """
    if isinstance(events, RecordingTelemetry):
        events = events.events
    path = Path(path)
    n = 0
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            record = event.to_record() if isinstance(event, TelemetryEvent) else dict(event)
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    return n


def read_jsonl(path) -> list[dict]:
    """Read a JSONL artifact back into a list of per-event dicts."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _stamp(iteration: int, dt: float | None) -> str:
    if dt is None:
        return f"k={iteration:5d}"
    return f"t={iteration * dt:8.2f}s (k={iteration:5d})"


def render_timeline(telemetry: RecordingTelemetry, dt: float | None = None) -> str:
    """Render the run's anomaly timeline as human-readable text.

    Reports edges, not per-iteration state: the committed mode's switches
    (with the winning mode's probability ``mu^m_k`` at the switch), sensor /
    actuator alarm onsets and clears (with the Chi-square statistic against
    its threshold at onset), and contiguous degraded-delivery spans, merged
    chronologically. *dt* (the control period) adds mission-time stamps next
    to the iteration indices.
    """
    entries: list[tuple[int, int, str]] = []

    previous_mode: str | None = None
    for event in telemetry.events_of("mode_bank"):
        if event.selected_mode != previous_mode:
            mu = event.probabilities.get(event.selected_mode, float("nan"))
            origin = "initial mode" if previous_mode is None else f"mode switch {previous_mode} ->"
            entries.append(
                (event.iteration, 0, f"{origin} {event.selected_mode}  (mu={mu:.3g})")
            )
            previous_mode = event.selected_mode

    sensor_on = actuator_on = False
    flagged_prev: tuple[str, ...] = ()
    for event in telemetry.events_of("decision"):
        if event.sensor_alarm and (not sensor_on or event.flagged_sensors != flagged_prev):
            named = ", ".join(event.flagged_sensors) or "(unidentified)"
            threshold = event.sensor_threshold
            margin = (
                f"stat {event.sensor_statistic:.2f} > thr {threshold:.2f}"
                if threshold is not None
                else f"stat {event.sensor_statistic:.2f}"
            )
            entries.append(
                (event.iteration, 1, f"SENSOR ALARM on [{named}]  ({margin})")
            )
        elif sensor_on and not event.sensor_alarm:
            entries.append((event.iteration, 1, "sensor alarm cleared"))
        sensor_on = event.sensor_alarm
        flagged_prev = event.flagged_sensors

        if event.actuator_alarm and not actuator_on:
            threshold = event.actuator_threshold
            margin = (
                f"stat {event.actuator_statistic:.2f} > thr {threshold:.2f}"
                if threshold is not None
                else f"stat {event.actuator_statistic:.2f}"
            )
            entries.append((event.iteration, 2, f"ACTUATOR ALARM  ({margin})"))
        elif actuator_on and not event.actuator_alarm:
            entries.append((event.iteration, 2, "actuator alarm cleared"))
        actuator_on = event.actuator_alarm

    span_start: int | None = None
    span_end = -1
    span_missing: set[str] = set()

    def flush_span() -> None:
        if span_start is None:
            return
        missing = ", ".join(sorted(span_missing))
        span = "" if span_start == span_end else f" .. k={span_end}"
        entries.append(
            (span_start, 3, f"degraded delivery{span} (missing: {missing})")
        )

    for event in telemetry.events_of("availability"):
        if span_start is not None and event.iteration == span_end + 1:
            span_end = event.iteration
            span_missing.update(event.missing)
        else:
            flush_span()
            span_start = span_end = event.iteration
            span_missing = set(event.missing)
    flush_span()

    if not entries:
        return "(no telemetry events recorded)\n"
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return "\n".join(f"{_stamp(k, dt)}  {text}" for k, _, text in entries) + "\n"


def export_run(
    telemetry: RecordingTelemetry,
    out_dir,
    prefix: str = "run",
    dt: float | None = None,
) -> dict[str, Path]:
    """Write all three artifacts for one recorded run into *out_dir*.

    Returns the paths keyed ``{"events", "timeline", "timing"}``. The
    directory is created if needed.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    events_path = out_dir / f"{prefix}.jsonl"
    timeline_path = out_dir / f"{prefix}_timeline.txt"
    timing_path = out_dir / f"{prefix}_timing.json"

    write_jsonl(telemetry, events_path)
    timeline_path.write_text(render_timeline(telemetry, dt=dt), encoding="utf-8")
    timing_path.write_text(
        json.dumps({"results": telemetry.timing_summary()}, indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return {"events": events_path, "timeline": timeline_path, "timing": timing_path}
