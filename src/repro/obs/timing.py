"""Lightweight per-stage wall-clock aggregation.

A :class:`StageTimer` folds individual ``time.perf_counter`` measurements
into streaming aggregates (count / mean / variance via Welford, min / max)
plus a fixed log-spaced histogram, so a full mission's worth of
per-iteration timings costs O(1) memory. :meth:`StageTimer.summary`
renders the aggregates in the same ``{"group", "mean_s", "stddev_s",
"rounds"}`` shape ``BENCH_perf.json`` records, so observability numbers and
benchmark numbers are directly comparable.

The instrumented call sites (``core/engine.py``, ``core/detector.py``)
only measure when the attached telemetry sink is enabled — the default
:class:`~repro.obs.telemetry.NullTelemetry` never pays a ``perf_counter``
call.
"""

from __future__ import annotations

import math

__all__ = ["StageTimer", "HISTOGRAM_EDGES_S"]

#: Log-spaced histogram bucket edges (seconds): 1 µs … 1 s, one bucket per
#: decade third. Detector stages on the reference machine land in the
#: 0.1–3 ms decade; the wide range keeps outliers (cold numpy, page faults)
#: visible instead of clipped.
HISTOGRAM_EDGES_S: tuple[float, ...] = tuple(
    10.0 ** (-6 + i / 3.0) for i in range(19)
)


class StageTimer:
    """Streaming aggregate of one pipeline stage's wall-clock durations."""

    __slots__ = ("stage", "count", "total", "min", "max", "_mean", "_m2", "buckets")

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.buckets = [0] * (len(HISTOGRAM_EDGES_S) + 1)

    def add(self, seconds: float) -> None:
        """Fold one measurement into the aggregates (Welford update)."""
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        delta = seconds - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (seconds - self._mean)
        self.buckets[self._bucket(seconds)] += 1

    @staticmethod
    def _bucket(seconds: float) -> int:
        lo, hi = 0, len(HISTOGRAM_EDGES_S)
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds < HISTOGRAM_EDGES_S[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def merge(self, other: "StageTimer") -> None:
        """Fold another timer's aggregates into this one.

        Exact (not approximate) combination: count/total/min/max add
        directly, mean and M2 combine via Chan's parallel Welford update,
        histogram buckets add elementwise. Used to merge worker-process
        recordings back into a parent-side timer.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.min = other.min
            self.max = other.max
            self._mean = other._mean
            self._m2 = other._m2
            self.buckets = list(other.buckets)
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / combined
        self._mean = (self._mean * self.count + other._mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.buckets = [a + b for a, b in zip(self.buckets, other.buckets)]

    @property
    def mean(self) -> float:
        """Mean duration in seconds (0.0 before any measurement)."""
        return self._mean

    @property
    def stddev(self) -> float:
        """Sample standard deviation in seconds (0.0 below two samples)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    def histogram(self) -> list[tuple[float, float, int]]:
        """Non-empty buckets as ``(low_edge_s, high_edge_s, count)`` rows."""
        edges = (0.0,) + HISTOGRAM_EDGES_S + (math.inf,)
        return [
            (edges[i], edges[i + 1], n)
            for i, n in enumerate(self.buckets)
            if n > 0
        ]

    def summary(self) -> dict:
        """Aggregates in the ``BENCH_perf.json`` per-result shape."""
        return {
            "group": "obs",
            "rounds": self.count,
            "mean_s": self.mean,
            "stddev_s": self.stddev,
            "min_s": 0.0 if self.count == 0 else self.min,
            "max_s": self.max,
            "total_s": self.total,
            "histogram": [
                {"ge_s": lo, "lt_s": "inf" if math.isinf(hi) else hi, "count": n}
                for lo, hi, n in self.histogram()
            ],
        }

    def __repr__(self) -> str:  # noqa: D105 — debugging aid only
        return (
            f"StageTimer({self.stage!r}, rounds={self.count}, "
            f"mean={self.mean * 1e3:.3f}ms)"
        )
