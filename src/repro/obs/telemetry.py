"""Telemetry protocol and its two built-in sinks.

The detector stack (engine → selector → decision maker) emits structured
events describing every internal quantity the paper's Algorithms 1–2
compute: mode probabilities ``mu^m_k``, likelihoods ``N^m_k``, the per-mode
unknown-input estimates ``d_hat^a_{k-1}`` / ``d_hat^s_k``, Chi-square
statistics against their thresholds, sliding-window occupancy, and the
degraded-mode availability events introduced by the fault layer.

Two sinks ship with the package:

* :class:`NullTelemetry` — the default. ``enabled`` is False, every hook is
  a no-op, and instrumented call sites guard on ``enabled`` before doing
  *any* extra work (no ``perf_counter`` calls, no dict copies), so the hot
  path and its golden-trace bit-identity are untouched.
* :class:`RecordingTelemetry` — appends every event to an in-memory list
  and aggregates per-stage wall-clock durations into
  :class:`~repro.obs.timing.StageTimer` histograms. Feed it to
  :mod:`repro.obs.export` for JSONL / timeline / timing-summary artifacts.

The module is dependency-free (stdlib + numpy only) and the event types are
frozen dataclasses, so a recorded run is an immutable, serializable fact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Mapping, Protocol, runtime_checkable

import numpy as np

from .timing import StageTimer

__all__ = [
    "TelemetryEvent",
    "ModeBankEvent",
    "DecisionEvent",
    "AvailabilityEvent",
    "FusedBatchEvent",
    "Telemetry",
    "NullTelemetry",
    "RecordingTelemetry",
    "NULL_TELEMETRY",
]


def _listify(value):
    """Recursively convert numpy containers to plain JSON-ready Python."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, Mapping):
        return {k: _listify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_listify(v) for v in value]
    if isinstance(value, frozenset):
        return sorted(value)
    return value


@dataclass(frozen=True)
class TelemetryEvent:
    """Base event: every emission carries the 1-based control iteration."""

    iteration: int

    #: Short machine-readable discriminator written to the JSONL ``kind``
    #: field; subclasses override it.
    kind = "event"

    def to_record(self) -> dict:
        """Flatten to a JSON-serializable dict (numpy → lists, sets → sorted)."""
        record = {"kind": self.kind}
        record.update({k: _listify(v) for k, v in asdict(self).items()})
        return record


@dataclass(frozen=True)
class ModeBankEvent(TelemetryEvent):
    """One multi-mode estimation iteration (Algorithm 1 lines 4–9).

    Attributes
    ----------
    probabilities:
        Normalized recursive mode probabilities ``mu^m_k`` keyed by mode.
    likelihoods:
        Raw mode likelihoods ``N^m_k`` (Algorithm 2 lines 17–20).
    consistency_scores:
        Finite-window log-likelihood sums the selector actually ranks
        (see the selection note in :mod:`repro.core.engine`).
    selected_mode:
        The committed maximum-consistency mode.
    actuator_estimates:
        Per-mode ``d_hat^a_{k-1}`` (Algorithm 2 lines 2–6).
    sensor_estimates:
        Per-mode stacked ``d_hat^s_k`` over the mode's testing block
        (Algorithm 2 lines 15–16).
    held_modes:
        Modes whose measurement update was skipped this iteration (their
        entire reference block was undelivered; probability held).
    solver_fallbacks:
        Per-mode count of unknown-input solves that left the Cholesky fast
        path for the pseudo-inverse fallback this iteration (0–2 per mode:
        the ``R*`` solve and the normal-equations solve). Persistent nonzero
        counts outside standstill phases indicate a conditioning regression.
    """

    probabilities: dict[str, float]
    likelihoods: dict[str, float]
    consistency_scores: dict[str, float]
    selected_mode: str
    actuator_estimates: dict[str, list]
    sensor_estimates: dict[str, list]
    held_modes: tuple[str, ...] = ()
    solver_fallbacks: dict[str, int] = field(default_factory=dict)

    kind = "mode_bank"


@dataclass(frozen=True)
class DecisionEvent(TelemetryEvent):
    """One decision-maker iteration (Algorithm 1 lines 10–25).

    Statistics are compared against their Chi-square thresholds
    ``chi2_{1-alpha}(dof)``; window occupancy records ``(positives, filled,
    window, criteria)`` for the aggregate c-of-w windows and per testing
    sensor — the "how close is this alarm to firing" view.
    """

    sensor_statistic: float
    sensor_threshold: float | None
    sensor_dof: int
    sensor_positive: bool
    sensor_alarm: bool
    actuator_statistic: float
    actuator_threshold: float | None
    actuator_dof: int
    actuator_positive: bool
    actuator_alarm: bool
    flagged_sensors: tuple[str, ...]
    sensor_window: tuple[int, int, int, int]
    actuator_window: tuple[int, int, int, int]
    per_sensor: dict[str, dict] = field(default_factory=dict)

    kind = "decision"


@dataclass(frozen=True)
class AvailabilityEvent(TelemetryEvent):
    """A degraded iteration: at least one sensor's reading never arrived.

    Emitted by the engine whenever the fault layer (or a caller-supplied
    mask) restricts the iteration, so a recorded run carries the exact
    degradation history alongside the statistics it explains.
    """

    available: tuple[str, ...]
    missing: tuple[str, ...]

    kind = "availability"


@dataclass(frozen=True)
class FusedBatchEvent(TelemetryEvent):
    """One fused multi-session kernel call (:mod:`repro.serve.fused`).

    Emitted per drain tick by the fused stepping engine — ``iteration`` is
    the engine's own tick counter, not a detector iteration. The occupancy
    numbers make under-filled batches visible: a fleet whose messages keep
    landing in singleton groups (``serial_fallbacks`` high, ``batched`` low)
    pays serial cost despite ``fused=True``.

    Attributes
    ----------
    batched:
        Sessions advanced through batched kernel calls this tick.
    serial_fallbacks:
        Sessions stepped through the serial per-session path this tick
        (degraded availability, telemetry-attached detectors, heterogeneous
        or singleton rig groups, or a kernel-stage exception).
    groups:
        Batched kernel calls issued (one per fused rig group).
    suppressed:
        Messages the ingest policies rejected before any stepping.
    group_sizes:
        Per-kernel-call batch widths, in group order.
    """

    batched: int
    serial_fallbacks: int
    groups: int
    suppressed: int
    group_sizes: tuple[int, ...] = ()

    kind = "fused_batch"


@runtime_checkable
class Telemetry(Protocol):
    """What the detector stack requires of a telemetry sink.

    ``enabled`` is the single hot-path guard: instrumented call sites must
    skip all event construction and timing when it is False, which is what
    lets :class:`NullTelemetry` promise bit-identical nominal behavior.
    """

    enabled: bool

    def emit(self, event: TelemetryEvent) -> None:
        """Consume one structured event."""
        ...

    def record_duration(self, stage: str, seconds: float) -> None:
        """Aggregate one wall-clock stage measurement."""
        ...


class NullTelemetry:
    """The default no-op sink: nothing recorded, no hot-path overhead."""

    enabled = False

    def emit(self, event: TelemetryEvent) -> None:
        """Discard the event."""

    def record_duration(self, stage: str, seconds: float) -> None:
        """Discard the measurement."""


class RecordingTelemetry:
    """In-memory sink: keeps every event and aggregates stage timings.

    Instances are picklable (events are frozen dataclasses, timers plain
    aggregates), so a recording made inside a worker process can cross the
    process boundary and be folded into a parent-side sink with
    :meth:`merge` — the mechanism :mod:`repro.eval.parallel` uses to give
    parallel evaluation runs the same telemetry a serial run produces.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []
        self.timers: dict[str, StageTimer] = {}

    def emit(self, event: TelemetryEvent) -> None:
        """Append one event to the recording."""
        self.events.append(event)

    def record_duration(self, stage: str, seconds: float) -> None:
        """Fold one stage duration into that stage's aggregate timer."""
        timer = self.timers.get(stage)
        if timer is None:
            timer = self.timers[stage] = StageTimer(stage)
        timer.add(seconds)

    def merge(self, other: "RecordingTelemetry") -> None:
        """Append another recording's events and fold in its stage timers.

        Events keep *other*'s internal order and land after everything this
        sink already recorded, so merging per-trial worker recordings in
        trial order reproduces the event sequence a serial run with one
        shared sink would have produced.
        """
        self.events.extend(other.events)
        for stage, timer in other.timers.items():
            mine = self.timers.get(stage)
            if mine is None:
                mine = self.timers[stage] = StageTimer(stage)
            mine.merge(timer)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def events_of(self, kind: str) -> list[TelemetryEvent]:
        """All recorded events with the given ``kind`` discriminator."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        """Drop all recorded events and timers (e.g. between missions)."""
        self.events.clear()
        self.timers.clear()

    def timing_summary(self) -> dict:
        """Per-stage aggregates in the ``BENCH_perf.json`` results shape."""
        return {
            name: timer.summary() for name, timer in sorted(self.timers.items())
        }


#: Shared no-op sink: the stack-wide default, so un-instrumented pipelines
#: never allocate a sink per component.
NULL_TELEMETRY = NullTelemetry()
