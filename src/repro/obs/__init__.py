"""Observability: structured telemetry for the RoboADS detection pipeline.

The detector stack is instrumented with an opt-in telemetry layer
(``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.telemetry` — the :class:`Telemetry` protocol, the no-op
  default :class:`NullTelemetry` (bit-identical hot path) and the in-memory
  :class:`RecordingTelemetry`, plus the typed events
  (:class:`ModeBankEvent`, :class:`DecisionEvent`,
  :class:`AvailabilityEvent`).
* :mod:`repro.obs.timing` — O(1)-memory per-stage latency aggregation
  (:class:`StageTimer`) with ``BENCH_perf.json``-compatible summaries.
* :mod:`repro.obs.export` — JSONL / anomaly-timeline / timing-summary
  artifacts for a recorded run (``scripts/diagnose_run.py`` is the CLI).
"""

from .export import export_run, read_jsonl, render_timeline, write_jsonl
from .telemetry import (
    AvailabilityEvent,
    DecisionEvent,
    ModeBankEvent,
    NullTelemetry,
    RecordingTelemetry,
    Telemetry,
    TelemetryEvent,
)
from .timing import StageTimer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "RecordingTelemetry",
    "TelemetryEvent",
    "ModeBankEvent",
    "DecisionEvent",
    "AvailabilityEvent",
    "StageTimer",
    "write_jsonl",
    "read_jsonl",
    "render_timeline",
    "export_run",
]
