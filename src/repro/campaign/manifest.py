"""Campaign manifests: declarative grids of content-addressed cells.

A manifest is a named list of :class:`CellSpec`, each a pure-data
description of one unit of evaluation work (a ``kind`` naming the executor
plus a JSON-only ``config``). Manifests compose the axes the evaluation
stack already exposes — attack scenarios, fault intensities, robots,
detector decision parameters, Monte-Carlo depth — and are what
``python -m repro.campaign run`` executes incrementally.

Two invariants make incremental re-runs sound:

* a cell's identity is its *configuration*, not its position — the
  content address (:func:`repro.campaign.hashing.config_hash`) covers the
  kind and every config key, so editing one axis value invalidates exactly
  the cells that axis touches;
* ``cell_id`` is a human-readable label, deliberately **excluded** from
  the hash — renaming a cell does not recompute it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..errors import ConfigurationError
from .hashing import config_hash

__all__ = [
    "CellSpec",
    "CampaignManifest",
    "detection_cell",
    "detection_grid",
    "experiment_cell",
]


@dataclass(frozen=True)
class CellSpec:
    """One unit of campaign work: an executor kind plus its configuration.

    Attributes
    ----------
    cell_id:
        Human-readable unique label within the manifest (dashboard/report
        key; not part of the content address).
    kind:
        Executor name registered in :mod:`repro.campaign.cells`.
    config:
        JSON-only configuration passed to the executor. Hashed together
        with *kind* into the cell's content address.
    """

    cell_id: str
    kind: str
    config: Mapping[str, Any]

    def address(self) -> str:
        """The cell's content address (stable across processes and runs)."""
        return config_hash({"kind": self.kind, "config": dict(self.config)})

    def to_dict(self) -> dict:
        """JSON form (manifest file row)."""
        return {"cell_id": self.cell_id, "kind": self.kind, "config": dict(self.config)}


@dataclass
class CampaignManifest:
    """A named, ordered collection of cells (one campaign)."""

    name: str
    cells: list[CellSpec] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for cell in self.cells:
            if cell.cell_id in seen:
                raise ConfigurationError(
                    f"duplicate cell_id {cell.cell_id!r} in manifest {self.name!r}"
                )
            seen.add(cell.cell_id)

    def __len__(self) -> int:
        return len(self.cells)

    def addresses(self) -> dict[str, str]:
        """Mapping of ``cell_id`` to content address, in manifest order."""
        return {cell.cell_id: cell.address() for cell in self.cells}

    def to_dict(self) -> dict:
        """JSON form of the whole manifest."""
        return {
            "name": self.name,
            "description": self.description,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignManifest":
        """Rebuild a manifest from its JSON form (inverse of :meth:`to_dict`)."""
        try:
            cells = [
                CellSpec(
                    cell_id=row["cell_id"], kind=row["kind"], config=dict(row["config"])
                )
                for row in data["cells"]
            ]
            return cls(
                name=data["name"],
                cells=cells,
                description=data.get("description", ""),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed campaign manifest: {exc!r}") from exc

    def save(self, path) -> Path:
        """Write the manifest as JSON to *path* (returned as a :class:`Path`)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "CampaignManifest":
        """Read a manifest JSON file written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Cell builders — the vocabulary experiments compose manifests from
# ----------------------------------------------------------------------


def detection_cell(
    rig: str,
    scenario: int | None,
    n_trials: int = 1,
    base_seed: int = 100,
    intensity: float = 0.0,
    fault_seed: int = 7,
    duration: float | None = None,
    decision: Mapping[str, Any] | None = None,
    telemetry: bool = False,
    cell_id: str | None = None,
) -> CellSpec:
    """One Monte-Carlo detection cell: rig x scenario x fault intensity.

    *scenario* is a Table II row number (``None`` = clean mission);
    *intensity* a uniform sensor-delivery dropout probability (``0.0`` runs
    the literal fault-free code path); *decision* optional
    :class:`~repro.core.decision.DecisionConfig` keyword overrides. With
    *telemetry* the cell's artifact carries the per-iteration event stream
    as JSONL (``docs/OBSERVABILITY.md``).
    """
    config: dict[str, Any] = {
        "rig": rig,
        "scenario": scenario,
        "n_trials": int(n_trials),
        "base_seed": int(base_seed),
        "intensity": float(intensity),
        "fault_seed": int(fault_seed),
        "duration": duration if duration is None else float(duration),
        "telemetry": bool(telemetry),
    }
    if decision:
        config["decision"] = dict(decision)
    if cell_id is None:
        scen = "clean" if scenario is None else f"s{scenario:02d}"
        cell_id = f"detection/{rig}/{scen}/drop{round(intensity * 100):03d}"
    return CellSpec(cell_id=cell_id, kind="detection", config=config)


def detection_grid(
    rig: str,
    scenarios: Sequence[int | None],
    intensities: Iterable[float] = (0.0,),
    n_trials: int = 1,
    base_seed: int = 100,
    fault_seed: int = 7,
    duration: float | None = None,
    decision: Mapping[str, Any] | None = None,
    telemetry: bool = False,
) -> list[CellSpec]:
    """The scenario x intensity product as detection cells (manifest order).

    Fault streams stay independent across intensities: each intensity's
    cells derive their schedules from ``fault_seed + 1000 * intensity_index``
    (the :func:`repro.eval.fault_campaign.run_fault_campaign` convention),
    so adding or removing an intensity never perturbs another's randomness.
    """
    return [
        detection_cell(
            rig,
            scenario,
            n_trials=n_trials,
            base_seed=base_seed,
            intensity=float(intensity),
            fault_seed=fault_seed + 1000 * intensity_index,
            duration=duration,
            decision=decision,
            telemetry=telemetry,
        )
        for intensity_index, intensity in enumerate(intensities)
        for scenario in scenarios
    ]


def experiment_cell(
    experiment: str, cell_id: str | None = None, **args: Any
) -> CellSpec:
    """A whole scalar experiment as one cell (rendered report + headline numbers).

    For experiments with no natural grid decomposition (Fig 6's single
    mission, the evasive bounds, the ablations) the unit of incremental
    re-run is the experiment itself: the cell caches its formatted report
    and whatever scalar summary the result object exposes.
    """
    config = {"experiment": experiment, "args": dict(args)}
    if cell_id is None:
        cell_id = f"experiment/{experiment}"
    return CellSpec(cell_id=cell_id, kind="experiment", config=config)
