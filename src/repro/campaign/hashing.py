"""Content addressing: canonical JSON and stable configuration hashes.

A cell's address is ``sha256(canonical_json(config))`` where the canonical
form is deterministic across processes, interpreter runs and platforms:

* keys sorted, no insignificant whitespace;
* floats serialized by ``repr`` round-trip (Python's shortest-repr float
  formatting is deterministic since 3.1) with ``-0.0`` normalized to
  ``0.0`` and non-finite values rejected — a NaN intensity cannot silently
  alias another cell;
* only JSON scalar/container types are accepted (tuples are serialized as
  lists); anything else is a :class:`~repro.errors.ConfigurationError`,
  never a repr-based fallback whose text could differ between runs.

The hash is salted with :data:`CELL_SCHEMA_VERSION`. Bump that constant
whenever the *meaning* of a stored result changes (an executor fix, a
metric definition change): every artifact in every store is invalidated at
once, which is exactly what a semantics change requires.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

from ..errors import ConfigurationError

__all__ = ["CELL_SCHEMA_VERSION", "canonical_json", "config_hash"]

#: Global hash salt: the version of the cell-result semantics. Bumping it
#: invalidates every stored artifact (see module docstring).
CELL_SCHEMA_VERSION = 1


def _canonicalize(value: Any, path: str) -> Any:
    """Normalize *value* into deterministic JSON-encodable primitives."""
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ConfigurationError(
                f"non-finite float at {path!r} cannot be content-addressed"
            )
        if value == 0.0:
            return 0.0  # fold -0.0, whose repr differs from 0.0
        if value == int(value) and abs(value) < 2**53:
            # 1.0 and 1 must address the same cell: JSON readers (and the
            # round-trip through a manifest file) cannot tell them apart.
            return int(value)
        return value
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"non-string mapping key {key!r} at {path!r} cannot be "
                    "content-addressed"
                )
            out[key] = _canonicalize(value[key], f"{path}.{key}")
        return out
    raise ConfigurationError(
        f"value of type {type(value).__name__} at {path!r} is not "
        "JSON-serializable; campaign cell configs must hold only "
        "None/bool/int/float/str/list/dict"
    )


def canonical_json(config: Any) -> str:
    """The canonical (deterministic) JSON text of *config*.

    Equal configurations — including ones that round-tripped through a
    manifest file, reordered their keys or swapped tuples for lists —
    produce byte-identical text.
    """
    return json.dumps(
        _canonicalize(config, "$"),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def config_hash(config: Mapping[str, Any]) -> str:
    """The content address (64 hex chars) of one cell configuration."""
    text = f"repro.campaign/v{CELL_SCHEMA_VERSION}:{canonical_json(config)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
