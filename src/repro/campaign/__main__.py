"""Campaign command line: ``python -m repro.campaign {run,status,report,gc}``.

Manifests come from a JSON file (``--manifest grid.json``, written by
:meth:`~repro.campaign.manifest.CampaignManifest.save` or by an
experiment's ``manifest()`` entry point via
``python -m repro.experiments <name> --manifest out.json``) or, for
``status``/``report``/``gc``, from the manifests recorded in the store by
previous runs. The store defaults to ``benchmarks/artifacts/`` under the
current directory; point ``--store`` elsewhere for scratch campaigns.

Examples::

    python -m repro.experiments robustness --manifest robustness.json
    python -m repro.campaign run --manifest robustness.json --workers 4
    python -m repro.campaign status --manifest robustness.json
    python -m repro.campaign report                 # every recorded campaign
    python -m repro.campaign gc                     # drop unreachable artifacts
    python scripts/make_dashboard.py                # render the HTML dashboard
"""

from __future__ import annotations

import argparse
import sys

from .manifest import CampaignManifest
from .report import format_campaign
from .runner import campaign_status, run_campaign
from .store import DEFAULT_STORE_ROOT, ResultStore


def _load_manifests(args, store: ResultStore) -> list[CampaignManifest]:
    if args.manifest:
        return [CampaignManifest.load(path) for path in args.manifest]
    manifests = store.manifests()
    if not manifests:
        print(
            "no manifests given (--manifest) and none recorded in the store yet",
            file=sys.stderr,
        )
    return manifests


def main(argv: list[str] | None = None) -> int:
    """Entry point (returns a process exit status)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run, inspect and garbage-collect campaign grids "
        "against the content-addressed results store (docs/CAMPAIGNS.md).",
    )
    parser.add_argument(
        "command", choices=("run", "status", "report", "gc"), help="what to do"
    )
    parser.add_argument(
        "--manifest",
        action="append",
        default=[],
        metavar="FILE",
        help="manifest JSON file (repeatable; default: manifests recorded "
        "in the store by previous runs)",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_ROOT,
        metavar="DIR",
        help=f"artifact store root (default: {DEFAULT_STORE_ROOT})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for pending cells (results identical to serial)",
    )
    args = parser.parse_args(argv)
    store = ResultStore(args.store)

    if args.command == "gc":
        deleted = store.gc()
        print(f"gc: deleted {len(deleted)} artifact(s) from {store.root}")
        for address in deleted:
            print(f"  {address}")
        return 0

    manifests = _load_manifests(args, store)
    if not manifests:
        return 1
    for manifest in manifests:
        if args.command == "run":
            report = run_campaign(
                manifest, store, parallel=args.workers, progress=print
            )
            print(report.format())
        elif args.command == "status":
            print(campaign_status(manifest, store).format())
        else:  # report
            print(format_campaign(manifest, store))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
