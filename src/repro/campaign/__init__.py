"""Campaign orchestration: manifest-driven evaluation grids with a results store.

Experiments in this repository historically printed tables and dropped
ad-hoc text files. This package turns every grid-shaped workload — attacks
x faults x robots x detector configs — into a declarative
:class:`CampaignManifest` whose cells execute over the
:mod:`repro.eval.parallel` process pool and persist as **content-addressed
artifacts**: a stable hash of the cell's configuration addresses its JSON
result (plus optional telemetry), so re-running a manifest skips every
unchanged cell and computes only the diff.

The layers, bottom to top:

* :mod:`repro.campaign.hashing` — canonical JSON + SHA-256 cell addressing.
* :mod:`repro.campaign.manifest` — :class:`CellSpec` / :class:`CampaignManifest`
  and the grid composition helpers experiments build their manifests with.
* :mod:`repro.campaign.cells` — the cell-kind executor registry (what one
  cell *means*: a detection Monte-Carlo cell, a Table IV variance setting,
  a whole scalar experiment).
* :mod:`repro.campaign.store` — the on-disk artifact store
  (``benchmarks/artifacts/`` by default) with atomic writes and GC.
* :mod:`repro.campaign.runner` — incremental execution (cache-hit skip,
  parallel fan-out, status/throughput accounting).
* :mod:`repro.campaign.report` — store-backed aggregation consumed by the
  text reports and ``scripts/make_dashboard.py``.

Command line: ``python -m repro.campaign {run,status,report,gc}``.
See ``docs/CAMPAIGNS.md`` for the manifest schema, the hashing and
invalidation rules, the artifact layout and a dashboard walkthrough.
"""

from __future__ import annotations

from .cells import execute_cell, register_cell_kind
from .hashing import CELL_SCHEMA_VERSION, canonical_json, config_hash
from .manifest import CampaignManifest, CellSpec, detection_cell, experiment_cell
from .report import campaign_report
from .runner import CampaignRunReport, CampaignStatus, campaign_status, run_campaign
from .store import DEFAULT_STORE_ROOT, ResultStore

__all__ = [
    "CELL_SCHEMA_VERSION",
    "CampaignManifest",
    "CampaignRunReport",
    "CampaignStatus",
    "CellSpec",
    "DEFAULT_STORE_ROOT",
    "ResultStore",
    "campaign_report",
    "campaign_status",
    "canonical_json",
    "config_hash",
    "detection_cell",
    "execute_cell",
    "experiment_cell",
    "register_cell_kind",
    "run_campaign",
]
