"""Incremental campaign execution over the process pool.

``run_campaign`` is the tentpole loop: hash every cell, look each address
up in the store, execute **only the misses** (over
:func:`repro.eval.parallel.map_trials`, so big grids fan out to worker
processes), persist each result parent-side, and record the manifest for
dashboard discovery. Re-running an unchanged manifest is a pure read —
zero cells execute, zero detector iterations run.

``campaign_status`` answers the "what would a run do?" question without
doing it: cached vs pending counts and the pending cell ids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..eval.parallel import ParallelSpec, map_trials
from .cells import execute_cell
from .manifest import CampaignManifest
from .store import ResultStore

__all__ = ["CampaignStatus", "CampaignRunReport", "campaign_status", "run_campaign"]


@dataclass(frozen=True)
class CampaignStatus:
    """Cached-vs-pending accounting for one manifest against one store."""

    name: str
    total: int
    cached: int
    pending_cells: tuple[str, ...]

    @property
    def pending(self) -> int:
        """Number of cells a run would execute."""
        return len(self.pending_cells)

    def format(self) -> str:
        """One-paragraph human summary (the ``status`` CLI output)."""
        lines = [
            f"campaign {self.name!r}: {self.total} cell(s), "
            f"{self.cached} cached, {self.pending} pending"
        ]
        for cell_id in self.pending_cells:
            lines.append(f"  pending: {cell_id}")
        return "\n".join(lines)


@dataclass
class CampaignRunReport:
    """What one ``run_campaign`` call did (throughput + cache accounting)."""

    name: str
    total: int
    cached: int
    computed: int
    elapsed_s: float
    addresses: dict[str, str] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cells served from the store."""
        return self.cached / self.total if self.total else 1.0

    @property
    def cells_per_s(self) -> float:
        """End-to-end throughput of this run over *all* cells (cached included)."""
        return self.total / self.elapsed_s if self.elapsed_s > 0 else float("inf")

    def format(self) -> str:
        """One-line human summary (the ``run`` CLI output)."""
        return (
            f"campaign {self.name!r}: {self.total} cell(s) in "
            f"{self.elapsed_s:.2f}s ({self.cells_per_s:.1f} cells/s) — "
            f"{self.cached} cached ({self.cache_hit_rate:.0%} hit rate), "
            f"{self.computed} computed"
        )


def campaign_status(manifest: CampaignManifest, store: ResultStore) -> CampaignStatus:
    """Cached/pending split of *manifest* against *store*, without executing."""
    pending = tuple(
        cell.cell_id for cell in manifest.cells if not store.has(cell.address())
    )
    return CampaignStatus(
        name=manifest.name,
        total=len(manifest.cells),
        cached=len(manifest.cells) - len(pending),
        pending_cells=pending,
    )


def _cell_chunk(payload, items):
    """Worker: execute the chunk's cells; results travel back for parent-side persist."""
    cells = payload
    out = []
    for index in items:
        cell = cells[index]
        start = time.perf_counter()
        result, telemetry = execute_cell(cell.kind, cell.config)
        out.append((result, telemetry, time.perf_counter() - start))
    return out


def run_campaign(
    manifest: CampaignManifest,
    store: ResultStore,
    parallel: ParallelSpec = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignRunReport:
    """Execute *manifest* incrementally against *store*.

    Cached cells (their content address already has an artifact) are
    skipped outright; the misses run through
    :func:`~repro.eval.parallel.map_trials` — serial in-process by default,
    fanned out to worker processes with ``parallel=``. Artifacts are
    persisted parent-side (one writer), and the manifest is recorded in
    the store for ``report``/dashboard discovery. *progress* (when given)
    receives one line per computed cell.
    """
    start = time.perf_counter()
    addresses = manifest.addresses()
    pending_indices = [
        index
        for index, cell in enumerate(manifest.cells)
        if not store.has(addresses[cell.cell_id])
    ]
    if pending_indices:
        outcomes = map_trials(
            _cell_chunk,
            pending_indices,
            parallel=parallel,
            payload=tuple(manifest.cells),
        )
        for index, (result, telemetry, elapsed) in zip(pending_indices, outcomes):
            cell = manifest.cells[index]
            store.put(cell, result, telemetry=telemetry, elapsed_s=elapsed)
            if progress is not None:
                progress(f"computed {cell.cell_id} in {elapsed:.2f}s")
    store.save_manifest(manifest)
    return CampaignRunReport(
        name=manifest.name,
        total=len(manifest.cells),
        cached=len(manifest.cells) - len(pending_indices),
        computed=len(pending_indices),
        elapsed_s=time.perf_counter() - start,
        addresses=addresses,
    )
