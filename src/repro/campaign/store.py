"""The content-addressed results store (``benchmarks/artifacts/`` by default).

Layout — one directory per artifact, addressed by the cell's config hash::

    <root>/
      objects/<aa>/<address>/result.json      envelope: config + result + metadata
      objects/<aa>/<address>/telemetry.jsonl  optional per-cell event stream
      campaigns/<name>.json                   last-run manifest copies (dashboard discovery)
      reports/<name>.json                     named-report pointers (benchmark .txt migration)

Properties the rest of the campaign layer leans on:

* **Idempotent, atomic writes.** An artifact is staged in a temp directory
  and moved into place with :func:`os.replace` semantics, so a crashed run
  never leaves a half-written artifact behind and concurrent writers of
  the *same* address converge on identical content.
* **Self-describing envelopes.** ``result.json`` embeds the cell's full
  config next to its result, so an artifact remains interpretable after
  the manifest that produced it changes (and ``gc`` can tell you what it
  is deleting).
* **Named reports ride the same objects.** Benchmark tables
  (historically ``benchmarks/results/*.txt``) are stored as ``report``
  objects whose address is the hash of their name + text, with a small
  mutable pointer under ``reports/`` giving "latest report by name".
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from .hashing import CELL_SCHEMA_VERSION, config_hash
from .manifest import CampaignManifest, CellSpec

__all__ = ["DEFAULT_STORE_ROOT", "ResultStore"]

#: Default store location relative to the repository root (the CLI and the
#: benchmark harness both resolve it against their own repo checkout).
DEFAULT_STORE_ROOT = "benchmarks/artifacts"


def _write_json_atomic(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class ResultStore:
    """Content-addressed artifact store rooted at *root* (created lazily)."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _ensure_root(self) -> None:
        # Self-ignoring, like .hypothesis/: artifacts are derived data and
        # must never be committed, wherever --store points.
        marker = self.root / ".gitignore"
        if not marker.is_file():
            self.root.mkdir(parents=True, exist_ok=True)
            marker.write_text("*\n")

    # -- addressing ----------------------------------------------------

    def _object_dir(self, address: str) -> Path:
        if len(address) != 64 or any(c not in "0123456789abcdef" for c in address):
            raise ConfigurationError(f"malformed artifact address {address!r}")
        return self.root / "objects" / address[:2] / address

    def has(self, address: str) -> bool:
        """Whether an artifact exists at *address*."""
        return (self._object_dir(address) / "result.json").is_file()

    def get(self, address: str) -> dict | None:
        """The artifact envelope at *address* (``None`` when absent)."""
        path = self._object_dir(address) / "result.json"
        if not path.is_file():
            return None
        return json.loads(path.read_text())

    def addresses(self) -> set[str]:
        """Every artifact address currently in the store."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return set()
        return {d.name for prefix in objects.iterdir() if prefix.is_dir() for d in prefix.iterdir() if d.is_dir()}

    # -- writing -------------------------------------------------------

    def put(
        self,
        cell: CellSpec,
        result: Mapping,
        telemetry: Iterable[Mapping] | None = None,
        elapsed_s: float | None = None,
    ) -> dict:
        """Persist one executed cell; returns the stored envelope.

        The staged directory is populated completely (telemetry first) and
        moved into place last, so :meth:`has` never observes a partial
        artifact.
        """
        self._ensure_root()
        address = cell.address()
        final = self._object_dir(address)
        envelope = {
            "address": address,
            "cell_id": cell.cell_id,
            "kind": cell.kind,
            "config": dict(cell.config),
            "result": dict(result),
            "schema_version": CELL_SCHEMA_VERSION,
            "created_unix": time.time(),
            "elapsed_s": elapsed_s,
            "has_telemetry": telemetry is not None,
        }
        final.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(tempfile.mkdtemp(dir=final.parent, prefix=".staging-"))
        try:
            if telemetry is not None:
                with (staging / "telemetry.jsonl").open("w", encoding="utf-8") as fh:
                    for record in telemetry:
                        fh.write(json.dumps(dict(record), sort_keys=True) + "\n")
            _write_json_atomic(staging / "result.json", envelope)
            if final.exists():
                shutil.rmtree(final)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return envelope

    # -- telemetry -----------------------------------------------------

    def telemetry_path(self, address: str) -> Path | None:
        """Path of the artifact's telemetry JSONL (``None`` when absent)."""
        path = self._object_dir(address) / "telemetry.jsonl"
        return path if path.is_file() else None

    def read_telemetry(self, address: str) -> list[dict]:
        """The artifact's telemetry records (empty when none were stored)."""
        path = self.telemetry_path(address)
        if path is None:
            return []
        return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]

    # -- manifests (dashboard discovery) -------------------------------

    def save_manifest(self, manifest: CampaignManifest) -> Path:
        """Record the manifest under ``campaigns/<name>.json`` (last-run copy)."""
        self._ensure_root()
        path = self.root / "campaigns" / f"{manifest.name}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(path, manifest.to_dict())
        return path

    def manifests(self) -> list[CampaignManifest]:
        """Every manifest recorded by past runs, sorted by name."""
        campaigns = self.root / "campaigns"
        if not campaigns.is_dir():
            return []
        return [
            CampaignManifest.load(path) for path in sorted(campaigns.glob("*.json"))
        ]

    # -- named reports (benchmark .txt migration) ----------------------

    def put_report(self, name: str, text: str) -> str:
        """Store a rendered report as a content-addressed ``report`` object.

        Returns the address. A ``reports/<name>.json`` pointer tracks the
        latest report per name; superseded report objects stay until
        :meth:`gc`.
        """
        cell = CellSpec(
            cell_id=f"report/{name}",
            kind="report",
            config={"name": name, "text": text},
        )
        envelope = self.put(cell, {"kind": "report", "name": name, "text": text})
        pointer = self.root / "reports" / f"{name}.json"
        pointer.parent.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(pointer, {"name": name, "address": envelope["address"]})
        return envelope["address"]

    def get_report(self, name: str) -> str | None:
        """The latest report text stored under *name* (``None`` when absent)."""
        pointer = self.root / "reports" / f"{name}.json"
        if not pointer.is_file():
            return None
        envelope = self.get(json.loads(pointer.read_text())["address"])
        if envelope is None:
            return None
        return envelope["result"]["text"]

    def report_names(self) -> list[str]:
        """Names of all stored reports (sorted)."""
        reports = self.root / "reports"
        if not reports.is_dir():
            return []
        return sorted(path.stem for path in reports.glob("*.json"))

    # -- garbage collection --------------------------------------------

    def live_addresses(self) -> set[str]:
        """Addresses reachable from recorded manifests and report pointers."""
        live: set[str] = set()
        for manifest in self.manifests():
            live.update(manifest.addresses().values())
        reports = self.root / "reports"
        if reports.is_dir():
            for pointer in reports.glob("*.json"):
                live.add(json.loads(pointer.read_text())["address"])
        return live

    def gc(self, keep: set[str] | None = None) -> list[str]:
        """Delete artifacts not in *keep* (default: :meth:`live_addresses`).

        Returns the deleted addresses. Invalidated cells (a changed seed, a
        schema-version bump) become unreachable the moment their manifest
        is re-saved, and this is what reclaims them.
        """
        keep = self.live_addresses() if keep is None else set(keep)
        deleted: list[str] = []
        for address in sorted(self.addresses() - keep):
            shutil.rmtree(self._object_dir(address))
            deleted.append(address)
        objects = self.root / "objects"
        if objects.is_dir():
            for prefix in objects.iterdir():
                if prefix.is_dir() and not any(prefix.iterdir()):
                    prefix.rmdir()
        return deleted
