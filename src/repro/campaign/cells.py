"""Cell executors: what one campaign cell *means*.

The runner never interprets a cell itself — it resolves the cell's
``kind`` in this registry and calls the executor with the cell's JSON
config. Executors return ``(result, telemetry_records)`` where *result* is
a JSON-serializable mapping (the artifact payload) and *telemetry_records*
is an optional list of per-event dicts stored alongside it as JSONL.

Built-in kinds:

* ``detection`` — a Monte-Carlo detection cell (rig x scenario x fault
  intensity x trials), reduced to the paper's confusion/delay metrics.
* ``table4_setting`` — one Table IV sensor setting's actuator-anomaly
  variance statistics on a clean mission.
* ``experiment`` — a whole scalar experiment (its rendered report), for
  workloads with no natural grid decomposition.

New kinds register through :func:`register_cell_kind`; third-party
detectors or the ROADMAP's attacker-vs-detector tournaments plug in the
same way. Experiment modules are imported lazily inside the executors so
``repro.campaign`` stays importable from ``repro.experiments`` without a
cycle.

Determinism contract: an executor must derive every random stream from the
cell config alone (trial noise from ``base_seed + trial``, fault streams
from ``fault_seed + trial``) so that a cell's artifact is a pure function
of its content address.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from ..errors import ConfigurationError

__all__ = ["execute_cell", "register_cell_kind", "cell_kinds"]

#: Executor signature: config -> (json result, telemetry records or None).
CellExecutor = Callable[[Mapping[str, Any]], tuple[dict, list[dict] | None]]

_EXECUTORS: dict[str, CellExecutor] = {}

#: Cells actually executed by this process (cache hits never increment it);
#: the campaign smoke test pins the all-cached re-run to zero executions.
EXECUTION_COUNT = 0


def register_cell_kind(kind: str, executor: CellExecutor, replace: bool = False) -> None:
    """Register *executor* for cells of *kind* (``replace=False`` guards typos)."""
    if not replace and kind in _EXECUTORS:
        raise ConfigurationError(f"cell kind {kind!r} is already registered")
    _EXECUTORS[kind] = executor


def cell_kinds() -> tuple[str, ...]:
    """The registered cell kinds (sorted)."""
    return tuple(sorted(_EXECUTORS))


def execute_cell(kind: str, config: Mapping[str, Any]) -> tuple[dict, list[dict] | None]:
    """Run one cell; returns the artifact payload and optional telemetry."""
    global EXECUTION_COUNT
    executor = _EXECUTORS.get(kind)
    if executor is None:
        raise ConfigurationError(
            f"unknown cell kind {kind!r}; registered kinds: {list(cell_kinds())}"
        )
    EXECUTION_COUNT += 1
    return executor(config)


# ----------------------------------------------------------------------
# Rig / scenario resolution (names are the manifest's robot axis)
# ----------------------------------------------------------------------


#: Per-process rig cache: planning (RRT*) dominates rig construction and
#: the planned path is immutable, so cells in one process share the rig —
#: exactly like the session-scoped test fixtures. Per-run mutable objects
#: (platform, controller, detector) still come fresh from the rig factories.
_RIG_CACHE: dict[str, Any] = {}


def _resolve_rig(name: str):
    from ..robots.khepera import khepera_rig
    from ..robots.tamiya import tamiya_rig

    factories = {"khepera": khepera_rig, "tamiya": tamiya_rig}
    if name not in factories:
        raise ConfigurationError(
            f"unknown rig {name!r}; campaign rigs are {sorted(factories)}"
        )
    if name not in _RIG_CACHE:
        rig = factories[name]()
        rig.plan_path(0)
        _RIG_CACHE[name] = rig
    return _RIG_CACHE[name]


def _resolve_scenario(rig_name: str, number: int | None):
    if number is None:
        return None
    from ..attacks.catalog import khepera_scenarios, tamiya_scenarios

    catalog = khepera_scenarios() if rig_name == "khepera" else tamiya_scenarios()
    for scenario in catalog:
        if scenario.number == number:
            return scenario
    raise ConfigurationError(
        f"scenario #{number} is not in the {rig_name} catalog "
        f"({[s.number for s in catalog]})"
    )


# ----------------------------------------------------------------------
# detection: Monte-Carlo confusion/delay metrics for one grid cell
# ----------------------------------------------------------------------


def _run_detection(config: Mapping[str, Any]) -> tuple[dict, list[dict] | None]:
    """Execute a ``detection`` cell (see :func:`repro.campaign.manifest.detection_cell`)."""
    from ..core.decision import DecisionConfig
    from ..eval.metrics import ConfusionCounts
    from ..eval.runner import run_scenario
    from ..obs.export import to_records
    from ..obs.telemetry import RecordingTelemetry
    from ..sim.faults import uniform_dropout_schedule

    rig = _resolve_rig(config["rig"])
    scenario = _resolve_scenario(config["rig"], config.get("scenario"))
    n_trials = int(config.get("n_trials", 1))
    base_seed = int(config.get("base_seed", 100))
    intensity = float(config.get("intensity", 0.0))
    fault_seed = int(config.get("fault_seed", 7))
    duration = config.get("duration")
    decision = (
        DecisionConfig(**config["decision"]) if config.get("decision") else None
    )
    record = bool(config.get("telemetry", False))

    telemetry_records: list[dict] = []
    sensor_total, actuator_total = ConfusionCounts(), ConfusionCounts()
    sensor_delays: list[float] = []
    actuator_delays: list[float] = []
    missed = 0
    transitions = 0
    degraded = 0
    iterations = 0
    finite = True
    for trial in range(n_trials):
        faults = (
            uniform_dropout_schedule(
                tuple(rig.suite.names), intensity, seed=fault_seed + trial
            )
            if intensity > 0.0
            else None
        )
        sink = RecordingTelemetry() if record else None
        result = run_scenario(
            rig,
            scenario,
            seed=base_seed + trial,
            duration=duration,
            decision=decision,
            faults=faults,
            telemetry=sink,
        )
        if sink is not None:
            telemetry_records.extend(to_records(sink))
        sensor_total.add(result.sensor_confusion)
        actuator_total.add(result.actuator_confusion)
        for event in result.delays:
            transitions += 1
            if event.delay is None:
                missed += 1
            elif event.channel == "sensor":
                sensor_delays.append(event.delay)
            else:
                actuator_delays.append(event.delay)
        iterations += len(result.trace)
        degraded += sum(1 for a in result.trace.availability if a is not None)
        for report in result.reports:
            stats = report.statistics
            if not (
                np.isfinite(stats.sensor_statistic)
                and np.isfinite(stats.actuator_statistic)
                and np.all(np.isfinite(stats.state_estimate))
            ):
                finite = False

    result_payload = {
        "kind": "detection",
        "rig": config["rig"],
        "scenario": config.get("scenario"),
        "scenario_name": scenario.name if scenario is not None else "clean",
        "n_trials": n_trials,
        "intensity": intensity,
        "sensor": sensor_total.to_dict(),
        "actuator": actuator_total.to_dict(),
        "mean_sensor_delay": float(np.mean(sensor_delays)) if sensor_delays else None,
        "mean_actuator_delay": (
            float(np.mean(actuator_delays)) if actuator_delays else None
        ),
        "transitions": transitions,
        "missed_transitions": missed,
        "iterations": iterations,
        "degraded_fraction": degraded / iterations if iterations else 0.0,
        "finite": finite,
    }
    return result_payload, telemetry_records if record else None


# ----------------------------------------------------------------------
# table4_setting: one sensor setting's variance statistics
# ----------------------------------------------------------------------


def _run_table4_setting(config: Mapping[str, Any]) -> tuple[dict, list[dict] | None]:
    """Execute a ``table4_setting`` cell (one Table IV reference-sensor row)."""
    from ..core.modes import Mode
    from ..eval.runner import run_scenario
    from ..experiments.table4 import SENSOR_SETTINGS, _setting_stats

    setting_name = config["setting"]
    settings = dict(SENSOR_SETTINGS)
    if setting_name not in settings:
        raise ConfigurationError(
            f"unknown Table IV setting {setting_name!r} (have {sorted(settings)})"
        )
    rig = _resolve_rig(config.get("rig", "khepera"))
    mode = Mode.for_suite(rig.suite, settings[setting_name])
    result = run_scenario(
        rig,
        None,
        seed=int(config.get("seed", 200)),
        modes=[mode],
        duration=float(config.get("duration", 18.0)),
        stop_at_goal=False,
    )
    empirical, theoretical, count = _setting_stats(result)
    return (
        {
            "kind": "table4_setting",
            "setting": setting_name,
            "empirical_variance": list(empirical),
            "theoretical_variance": list(theoretical),
            "n_iterations": count,
        },
        None,
    )


# ----------------------------------------------------------------------
# experiment: a whole scalar experiment as one cached unit
# ----------------------------------------------------------------------

#: Experiment-name -> (module, function) for ``experiment`` cells; matches
#: the ``python -m repro.experiments`` vocabulary.
_EXPERIMENT_FUNCS: dict[str, tuple[str, str]] = {
    "table2": ("repro.experiments.table2", "run_table2"),
    "table4": ("repro.experiments.table4", "run_table4"),
    "fig6": ("repro.experiments.fig6", "run_fig6"),
    "fig7": ("repro.experiments.fig7", "run_fig7"),
    "tamiya": ("repro.experiments.tamiya_eval", "run_tamiya_eval"),
    "linear": ("repro.experiments.linear_benchmark", "run_linear_benchmark"),
    "evasive": ("repro.experiments.evasive", "run_evasive"),
    "ablation": ("repro.experiments.ablation", "run_ablation"),
    "response": ("repro.experiments.response", "run_response"),
    "switching": ("repro.experiments.switching", "run_switching"),
    "sensor-quality": ("repro.experiments.sensor_quality", "run_sensor_quality"),
    "robustness": ("repro.experiments.robustness", "run_robustness"),
}


def _run_experiment(config: Mapping[str, Any]) -> tuple[dict, list[dict] | None]:
    """Execute an ``experiment`` cell: run the named experiment, cache its report."""
    import importlib

    name = config["experiment"]
    if name not in _EXPERIMENT_FUNCS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; campaign experiments are "
            f"{sorted(_EXPERIMENT_FUNCS)}"
        )
    module_name, func_name = _EXPERIMENT_FUNCS[name]
    func = getattr(importlib.import_module(module_name), func_name)
    result = func(**dict(config.get("args", {})))
    return (
        {
            "kind": "experiment",
            "experiment": name,
            "formatted": result.format(),
        },
        None,
    )


register_cell_kind("detection", _run_detection)
register_cell_kind("table4_setting", _run_table4_setting)
register_cell_kind("experiment", _run_experiment)
