"""Store-backed aggregation: from artifacts to tables, grids and curves.

Everything here is a pure function of (manifest, store) — the reporting
layer never executes cells. ``campaign_report`` returns the generic
envelope listing the CLI prints; the shaped views (``detection_table``,
``fault_grid``, ``table4_rows``) are what ``scripts/make_dashboard.py``
renders as the Table II / Table IV reproductions and the fault-campaign
grid with its degradation curves.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .manifest import CampaignManifest
from .store import ResultStore

__all__ = [
    "campaign_report",
    "detection_table",
    "fault_grid",
    "format_campaign",
    "table4_rows",
]


def campaign_report(manifest: CampaignManifest, store: ResultStore) -> dict:
    """Per-cell envelope listing for *manifest* (missing cells marked pending)."""
    cells = []
    for cell in manifest.cells:
        address = cell.address()
        envelope = store.get(address)
        cells.append(
            {
                "cell_id": cell.cell_id,
                "kind": cell.kind,
                "address": address,
                "cached": envelope is not None,
                "result": None if envelope is None else envelope["result"],
                "elapsed_s": None if envelope is None else envelope.get("elapsed_s"),
                "has_telemetry": bool(envelope and envelope.get("has_telemetry")),
            }
        )
    cached = sum(1 for c in cells if c["cached"])
    return {
        "name": manifest.name,
        "description": manifest.description,
        "total": len(cells),
        "cached": cached,
        "pending": len(cells) - cached,
        "cells": cells,
    }


def _detection_results(report: Mapping) -> list[dict]:
    return [
        cell
        for cell in report["cells"]
        if cell["cached"] and cell["result"] and cell["result"].get("kind") == "detection"
    ]


def detection_table(report: Mapping, intensity: float = 0.0) -> list[dict]:
    """Table II-shaped rows: one per detection cell at *intensity*.

    Each row carries the scenario identity, per-channel FPR/FNR/detection
    rates, mean delays and the finite flag — the dashboard renders them as
    the Table II reproduction.
    """
    rows = []
    for cell in _detection_results(report):
        result = cell["result"]
        if result["intensity"] != intensity:
            continue
        rows.append(
            {
                "cell_id": cell["cell_id"],
                "scenario": result["scenario"],
                "scenario_name": result["scenario_name"],
                "rig": result["rig"],
                "n_trials": result["n_trials"],
                "sensor": result["sensor"],
                "actuator": result["actuator"],
                "mean_sensor_delay": result["mean_sensor_delay"],
                "mean_actuator_delay": result["mean_actuator_delay"],
                "identified": result["missed_transitions"] == 0,
                "finite": result["finite"],
            }
        )
    rows.sort(key=lambda r: (r["scenario"] is None, r["scenario"] or 0))
    return rows


def fault_grid(report: Mapping) -> dict:
    """The intensity x scenario grid plus per-intensity degradation curves.

    Returns ``{"intensities", "scenarios", "cells", "curves"}`` where
    ``cells`` maps ``"<scenario>|<intensity>"`` to that cell's detection
    summary and ``curves`` holds, per channel, the mean detection rate and
    false-positive rate at each intensity (the degradation curve the
    dashboard plots).
    """
    intensities: list[float] = []
    scenarios: list[tuple] = []
    cells: dict[str, dict] = {}
    for cell in _detection_results(report):
        result = cell["result"]
        intensity = float(result["intensity"])
        key = (result["scenario"], result["scenario_name"])
        if intensity not in intensities:
            intensities.append(intensity)
        if key not in scenarios:
            scenarios.append(key)
        cells[f"{result['scenario']}|{intensity}"] = {
            "cell_id": cell["cell_id"],
            "sensor_detection_rate": 1.0 - result["sensor"]["fnr"],
            "actuator_detection_rate": 1.0 - result["actuator"]["fnr"],
            "sensor_fpr": result["sensor"]["fpr"],
            "actuator_fpr": result["actuator"]["fpr"],
            "degraded_fraction": result["degraded_fraction"],
            "finite": result["finite"],
        }
    intensities.sort()
    scenarios.sort(key=lambda key: (key[0] is None, key[0] or 0))
    curves: dict[str, list[dict]] = {"sensor": [], "actuator": []}
    for intensity in intensities:
        at = [
            cells[f"{scenario}|{intensity}"]
            for scenario, _ in scenarios
            if f"{scenario}|{intensity}" in cells
        ]
        if not at:
            continue
        for channel in ("sensor", "actuator"):
            curves[channel].append(
                {
                    "intensity": intensity,
                    "detection_rate": sum(c[f"{channel}_detection_rate"] for c in at)
                    / len(at),
                    "fpr": sum(c[f"{channel}_fpr"] for c in at) / len(at),
                }
            )
    return {
        "intensities": intensities,
        "scenarios": [{"number": n, "name": name} for n, name in scenarios],
        "cells": cells,
        "curves": curves,
    }


def table4_rows(report: Mapping) -> list[dict]:
    """Table IV-shaped rows from ``table4_setting`` cells (manifest order)."""
    rows = []
    for cell in report["cells"]:
        if not cell["cached"] or not cell["result"]:
            continue
        result = cell["result"]
        if result.get("kind") != "table4_setting":
            continue
        rows.append(
            {
                "cell_id": cell["cell_id"],
                "setting": result["setting"],
                "empirical_variance": result["empirical_variance"],
                "theoretical_variance": result["theoretical_variance"],
                "n_iterations": result["n_iterations"],
            }
        )
    return rows


def format_campaign(manifest: CampaignManifest, store: ResultStore) -> str:
    """Text rendering of a campaign's state (the ``report`` CLI output)."""
    from ..eval.tables import format_table

    report = campaign_report(manifest, store)
    rows: list[Sequence] = []
    for cell in report["cells"]:
        result = cell["result"] or {}
        summary = ""
        if result.get("kind") == "detection":
            summary = (
                f"S det {1.0 - result['sensor']['fnr']:.0%} "
                f"FPR {result['sensor']['fpr']:.2%} | "
                f"A det {1.0 - result['actuator']['fnr']:.0%} "
                f"FPR {result['actuator']['fpr']:.2%}"
            )
        elif result.get("kind") == "table4_setting":
            emp = result["empirical_variance"]
            summary = f"var d^a = ({emp[0]:.2e}, {emp[1]:.2e})"
        elif result.get("kind") == "experiment":
            summary = f"{len(result['formatted'].splitlines())} report line(s)"
        rows.append(
            [
                cell["cell_id"],
                cell["address"][:12],
                "cached" if cell["cached"] else "PENDING",
                "-" if cell["elapsed_s"] is None else f"{cell['elapsed_s']:.2f}s",
                summary,
            ]
        )
    table = format_table(
        ["cell", "address", "state", "cost", "summary"],
        rows,
        title=(
            f"campaign {report['name']!r}: {report['cached']}/{report['total']} "
            "cell(s) cached"
        ),
    )
    return table
