"""Section V-D: generality on a second robot (the Tamiya RC car).

The paper implements the identical detector construction on a robot with a
different dynamic model and sensor mix and reports average FPR/FNR of
2.77%/0.83% and an average delay of 0.33 s. This experiment runs the
adapted Tamiya scenario suite and reports the same aggregates.

Where do results go? ``run_tamiya_eval`` returns a :class:`TamiyaResult`;
``benchmarks/bench_tamiya.py`` persists the rendering to the artifact
store (``benchmarks/artifacts/``, with a ``benchmarks/results/tamiya.txt``
compat copy), and :func:`manifest` exposes the Tamiya scenario suite as
campaign cells for ``python -m repro.campaign`` (``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.catalog import tamiya_scenarios
from ..eval.metrics import ConfusionCounts
from ..eval.runner import monte_carlo
from ..eval.tables import format_table
from ..robots.tamiya import tamiya_rig
from .common import TAMIYA_SENSOR_ORDER, detected_sequence, truth_sequence

__all__ = ["TamiyaResult", "manifest", "run_tamiya_eval"]


def manifest(n_trials: int = 2, base_seed: int = 400):
    """The Tamiya suite as a campaign manifest (one detection cell per scenario)."""
    from ..campaign.manifest import CampaignManifest, detection_grid

    return CampaignManifest(
        "tamiya",
        cells=detection_grid(
            "tamiya",
            [s.number for s in tamiya_scenarios()],
            n_trials=n_trials,
            base_seed=base_seed,
        ),
        description="Section V-D generality: the adapted Tamiya scenario suite "
        "as Monte-Carlo detection cells",
    )


@dataclass
class TamiyaScenarioRow:
    number: int
    name: str
    truth_seq: str
    detected_seq: str
    sensor_fpr: float
    sensor_fnr: float
    actuator_fpr: float
    actuator_fnr: float
    mean_delay: float | None


@dataclass
class TamiyaResult:
    rows: list[TamiyaScenarioRow]
    n_trials: int

    @property
    def average_fpr(self) -> float:
        values = [r.sensor_fpr for r in self.rows] + [r.actuator_fpr for r in self.rows]
        return float(np.mean(values))

    @property
    def average_fnr(self) -> float:
        values = [r.sensor_fnr for r in self.rows] + [r.actuator_fnr for r in self.rows]
        return float(np.mean(values))

    @property
    def average_delay(self) -> float | None:
        delays = [r.mean_delay for r in self.rows if r.mean_delay is not None]
        return float(np.mean(delays)) if delays else None

    def format(self) -> str:
        rows = [
            [
                r.number,
                r.name[:30],
                r.truth_seq,
                r.detected_seq,
                f"{r.sensor_fpr:.2%}/{r.sensor_fnr:.2%}",
                f"{r.actuator_fpr:.2%}/{r.actuator_fnr:.2%}",
                "-" if r.mean_delay is None else f"{r.mean_delay:.2f}",
            ]
            for r in self.rows
        ]
        table = format_table(
            ["#", "Scenario", "Truth S-seq", "Detected S-seq", "S FPR/FNR", "A FPR/FNR", "delay(s)"],
            rows,
            title=f"Section V-D reproduction: Tamiya RC car ({self.n_trials} trials/scenario)",
        )
        delay = "n/a" if self.average_delay is None else f"{self.average_delay:.2f}s"
        return table + (
            f"\nAverages: FPR {self.average_fpr:.2%} (paper 2.77%), "
            f"FNR {self.average_fnr:.2%} (paper 0.83%), delay {delay} (paper 0.33s)"
        )


def run_tamiya_eval(n_trials: int = 2, base_seed: int = 400) -> TamiyaResult:
    """Run the adapted scenario suite on the Tamiya prototype."""
    rig = tamiya_rig()
    rig.plan_path(0)
    rows: list[TamiyaScenarioRow] = []
    for scenario in tamiya_scenarios():
        results = monte_carlo(rig, scenario, n_trials, base_seed=base_seed)
        sensor_total, actuator_total = ConfusionCounts(), ConfusionCounts()
        delays: list[float] = []
        for result in results:
            sensor_total.add(result.sensor_confusion)
            actuator_total.add(result.actuator_confusion)
            delays.extend(e.delay for e in result.delays if e.delay is not None)
        reference = results[0]
        rows.append(
            TamiyaScenarioRow(
                number=scenario.number,
                name=scenario.name,
                truth_seq=truth_sequence(reference.trace, TAMIYA_SENSOR_ORDER),
                detected_seq=detected_sequence(reference.trace, TAMIYA_SENSOR_ORDER),
                sensor_fpr=sensor_total.false_positive_rate,
                sensor_fnr=sensor_total.false_negative_rate,
                actuator_fpr=actuator_total.false_positive_rate,
                actuator_fnr=actuator_total.false_negative_rate,
                mean_delay=float(np.mean(delays)) if delays else None,
            )
        )
    return TamiyaResult(rows=rows, n_trials=n_trials)
