"""Command-line experiment runner.

Regenerate any paper table/figure (or extension study) from a terminal::

    python -m repro.experiments table2
    python -m repro.experiments fig7 --trials 2
    python -m repro.experiments all

With ``--manifest FILE`` the experiment is not run: its campaign manifest
is written as JSON instead, ready for the incremental runner
(``python -m repro.campaign run --manifest FILE`` — see
``docs/CAMPAIGNS.md``).

The same experiments run (with assertions) under
``pytest benchmarks/ --benchmark-only``; this entry point is for quick
interactive regeneration.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import (
    run_ablation,
    run_evasive,
    run_fig6,
    run_fig7,
    run_linear_benchmark,
    run_table2,
    run_table4,
    run_tamiya_eval,
)
from .response import run_response
from .robustness import run_robustness
from .sensor_quality import run_sensor_quality
from .switching import run_switching

# Module (under this package) providing each experiment's ``manifest()``.
MANIFEST_MODULES: dict[str, str] = {
    "table2": "table2",
    "table4": "table4",
    "fig6": "fig6",
    "fig7": "fig7",
    "tamiya": "tamiya_eval",
    "linear": "linear_benchmark",
    "evasive": "evasive",
    "ablation": "ablation",
    "response": "response",
    "switching": "switching",
    "sensor-quality": "sensor_quality",
    "robustness": "robustness",
}

EXPERIMENTS: dict[str, Callable[..., object]] = {
    "table2": lambda args: run_table2(n_trials=args.trials, parallel=args.workers),
    "table4": lambda args: run_table4(parallel=args.workers),
    "fig6": lambda args: run_fig6(seed=args.seed),
    "fig7": lambda args: run_fig7(n_trials=args.trials, parallel=args.workers),
    "tamiya": lambda args: run_tamiya_eval(n_trials=args.trials),
    "linear": lambda args: run_linear_benchmark(seed=args.seed),
    "evasive": lambda args: run_evasive(seed=args.seed),
    "ablation": lambda args: run_ablation(seed=args.seed),
    "response": lambda args: run_response(seed=args.seed),
    "switching": lambda args: run_switching(seed=args.seed),
    "sensor-quality": lambda args: run_sensor_quality(seed=args.seed),
    "robustness": lambda args: run_robustness(n_trials=args.trials, parallel=args.workers),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the RoboADS paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument("--trials", type=int, default=2, help="Monte-Carlo trials where applicable")
    parser.add_argument("--seed", type=int, default=42, help="base random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the Monte-Carlo experiments "
        "(table2/table4/fig7/robustness); results are identical to serial",
    )
    parser.add_argument(
        "--manifest",
        metavar="FILE",
        default=None,
        help="instead of running, write the experiment's campaign manifest "
        "(JSON) to FILE for `python -m repro.campaign run`",
    )
    args = parser.parse_args(argv)

    if args.manifest is not None:
        if args.experiment == "all":
            parser.error("--manifest needs a single experiment, not 'all'")
        import importlib

        module = importlib.import_module(
            f".{MANIFEST_MODULES[args.experiment]}", __package__
        )
        path = module.manifest().save(args.manifest)
        print(f"wrote manifest for {args.experiment} to {path}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name](args)
        elapsed = time.perf_counter() - start
        print(f"\n=== {name} ({elapsed:.1f}s) ===")
        print(result.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
