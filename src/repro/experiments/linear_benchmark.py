"""Section V-G: benchmark against a linearize-once (linear-system) approach.

The baseline shares every line of the detector except the linearization
policy: its model is frozen at the mission's initial state. The paper
observes that "estimation errors become larger as time goes by and finally
lead to false positives", measuring 61.68% average FPR (with no false
negatives) for the attack/failure scenarios on the Khepera. The reproduced
claim is the *gap*: the baseline's sensor FPR is catastrophically higher
than RoboADS's on identical runs.

Where do results go? ``run_linear_benchmark`` returns a
:class:`LinearBenchmarkResult`; ``benchmarks/bench_linear_baseline.py``
persists the rendering to the artifact store (``benchmarks/artifacts/``,
with a ``benchmarks/results/linear_baseline.txt`` compat copy), and
:func:`manifest` wraps the comparison as a single ``experiment`` campaign
cell (``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.catalog import khepera_scenarios
from ..core.linearization import FixedPointLinearization
from ..eval.metrics import ConfusionCounts
from ..eval.runner import run_scenario
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig

__all__ = ["LinearBenchmarkResult", "manifest", "run_linear_benchmark"]


def manifest(seed: int = 500):
    """The linearize-once comparison as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "linear",
        cells=[experiment_cell("linear", seed=seed)],
        description="Section V-G benchmark: RoboADS vs a linearize-once "
        "baseline on identical runs",
    )


@dataclass
class LinearBenchmarkResult:
    baseline_sensor_fpr: float
    baseline_sensor_fnr: float
    roboads_sensor_fpr: float
    roboads_sensor_fnr: float
    per_scenario: list[tuple[str, float, float]]  # (name, baseline FPR, roboads FPR)

    def format(self) -> str:
        rows = [
            [name, f"{base:.2%}", f"{ours:.2%}"]
            for name, base, ours in self.per_scenario
        ]
        table = format_table(
            ["Scenario", "linearize-once FPR", "RoboADS FPR"],
            rows,
            title="Section V-G reproduction: linear-system baseline comparison",
        )
        return table + (
            f"\nAverage sensor FPR: baseline {self.baseline_sensor_fpr:.2%} "
            f"(paper 61.68%) vs RoboADS {self.roboads_sensor_fpr:.2%}; "
            f"baseline FNR {self.baseline_sensor_fnr:.2%} (paper 0%)"
        )

    @property
    def gap(self) -> float:
        return self.baseline_sensor_fpr - self.roboads_sensor_fpr


def run_linear_benchmark(
    seed: int = 500, scenario_numbers: tuple[int, ...] = (3, 4, 6)
) -> LinearBenchmarkResult:
    """Run clean + selected scenarios under both detectors.

    The clean mission is included (labelled "clean") because the baseline's
    failure mode — model-mismatch innovations masquerading as sensor
    anomalies — is clearest there.
    """
    rig = khepera_rig()
    rig.plan_path(0)
    start = np.array(rig.mission.start_pose, dtype=float)

    chosen = [None] + [s for s in khepera_scenarios() if s.number in scenario_numbers]
    base_total, ours_total = ConfusionCounts(), ConfusionCounts()
    per_scenario = []
    for scenario in chosen:
        policy = FixedPointLinearization(start, np.array([0.1, 0.12]))
        baseline = run_scenario(rig, scenario, seed=seed, policy=policy)
        ours = run_scenario(rig, scenario, seed=seed)
        base_total.add(baseline.sensor_confusion)
        ours_total.add(ours.sensor_confusion)
        per_scenario.append(
            (
                "clean" if scenario is None else f"#{scenario.number} {scenario.name}",
                baseline.sensor_confusion.false_positive_rate,
                ours.sensor_confusion.false_positive_rate,
            )
        )
    return LinearBenchmarkResult(
        baseline_sensor_fpr=base_total.false_positive_rate,
        baseline_sensor_fnr=base_total.false_negative_rate,
        roboads_sensor_fpr=ours_total.false_positive_rate,
        roboads_sensor_fnr=ours_total.false_negative_rate,
        per_scenario=per_scenario,
    )
