"""Section V-E: how sensor quantity and quality shape detection power.

The paper states that fusing better sensors (smaller covariances) strictly
reduces estimation variances, and Table IV demonstrates the quantity side.
This experiment quantifies both axes directly on the estimator:

* **Quality sweep** — the IPS position sigma is swept over a decade; the
  actuator anomaly estimation variance (through an IPS-reference mode) must
  grow monotonically with the sigma, and therefore so does the smallest
  detectable actuator attack.
* **Quantity sweep** — reference sets of 1, 2 and 3 fused sensors; the
  variance must shrink monotonically as sensors are added (the Section V-E
  "strictly reduce" claim, beyond Table IV's four rows).

The estimator is exercised on the Khepera model with a wandering control
profile (straights and arcs) so both control channels stay excited.

Where do results go? ``run_sensor_quality`` returns a
:class:`SensorQualityResult`; ``benchmarks/bench_extensions.py`` persists
the rendering to the artifact store (``benchmarks/artifacts/``, with a
``benchmarks/results/sensor_quality.txt`` compat copy), and
:func:`manifest` wraps both sweeps as a single ``experiment`` campaign
cell (``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.modes import Mode
from ..core.nuise import NuiseFilter
from ..dynamics.differential_drive import DifferentialDriveModel
from ..eval.tables import format_table
from ..sensors.lidar import WallDistanceSensor
from ..sensors.pose_sensors import IPS, OdometryPoseSensor
from ..sensors.suite import SensorSuite
from ..world.presets import paper_arena

__all__ = ["SensorQualityResult", "manifest", "run_sensor_quality"]


def manifest(seed: int = 1000):
    """The quality/quantity sweeps as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "sensor-quality",
        cells=[experiment_cell("sensor-quality", seed=seed)],
        description="Section V-E reproduction: estimation variance vs sensor "
        "quality and quantity",
    )

PROCESS_SIGMAS = np.array([0.0005, 0.0005, 0.0015])


@dataclass
class SensorQualityResult:
    quality_sigmas: list[float]
    quality_variances: list[float]
    quantity_settings: list[str]
    quantity_variances: list[float]

    def quality_monotone(self) -> bool:
        return all(
            a <= b * 1.05
            for a, b in zip(self.quality_variances, self.quality_variances[1:])
        )

    def quantity_monotone(self) -> bool:
        return all(
            a >= b * 0.95
            for a, b in zip(self.quantity_variances, self.quantity_variances[1:])
        )

    def format(self) -> str:
        t1 = format_table(
            ["IPS sigma_xy", "Var(d_a) per wheel"],
            [
                [f"{sigma * 1000:.1f} mm", f"{var:.3e}"]
                for sigma, var in zip(self.quality_sigmas, self.quality_variances)
            ],
            title="Section V-E: sensor quality sweep (IPS as sole reference)",
        )
        t2 = format_table(
            ["reference sensors", "Var(d_a) per wheel"],
            [
                [setting, f"{var:.3e}"]
                for setting, var in zip(self.quantity_settings, self.quantity_variances)
            ],
            title="Section V-E: sensor quantity sweep (fused references)",
        )
        return (
            t1
            + "\n\n"
            + t2
            + "\nExpected (paper): variance grows with sigma and strictly shrinks as "
            "reference sensors are fused."
        )


def _wandering_controls(n_steps: int, dt: float) -> list[np.ndarray]:
    """Alternating straight/arc command profile keeping both channels excited."""
    controls = []
    for k in range(n_steps):
        phase = (k * dt) % 4.0
        if phase < 2.0:
            controls.append(np.array([0.18, 0.18]))
        elif phase < 3.0:
            controls.append(np.array([0.12, 0.22]))
        else:
            controls.append(np.array([0.22, 0.12]))
    return controls


def _actuator_variance(suite: SensorSuite, reference: tuple[str, ...], seed: int, n_steps: int = 250) -> float:
    """Mean per-wheel Var(d_hat^a) through the given reference set."""
    model = DifferentialDriveModel(dt=0.05)
    mode = Mode.for_suite(suite, reference)
    filt = NuiseFilter(
        model,
        suite,
        mode,
        np.diag(PROCESS_SIGMAS**2),
        nominal_control=np.array([0.1, 0.12]),
    )
    rng = np.random.default_rng(seed)
    x_true = np.array([1.0, 0.8, 0.3])
    x_hat, P = x_true.copy(), 1e-6 * np.eye(3)
    estimates = []
    for control in _wandering_controls(n_steps, model.dt):
        x_true = model.normalize_state(
            model.f(x_true, control) + PROCESS_SIGMAS * rng.standard_normal(3)
        )
        z = suite.measure(x_true, rng)
        result = filt.step(control, x_hat, P, z)
        x_hat, P = result.state, result.state_covariance
        estimates.append(result.actuator_anomaly)
    estimates = np.array(estimates[20:])
    return float(np.mean(estimates.var(axis=0, ddof=1)))


def run_sensor_quality(
    sigmas=(0.0005, 0.001, 0.002, 0.004, 0.008), seed: int = 1000
) -> SensorQualityResult:
    """Run both Section V-E sweeps."""
    world = paper_arena()

    quality_variances = []
    for sigma in sigmas:
        suite = SensorSuite(
            [IPS(sigma_xy=sigma), OdometryPoseSensor(), WallDistanceSensor(world)]
        )
        quality_variances.append(_actuator_variance(suite, ("ips",), seed))

    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(world)])
    quantity = [
        ("lidar", ("lidar",)),
        ("lidar + wheel encoder", ("wheel_encoder", "lidar")),
        ("lidar + wheel encoder + ips", ("ips", "wheel_encoder", "lidar")),
    ]
    quantity_variances = [
        _actuator_variance(suite, reference, seed) for _, reference in quantity
    ]
    return SensorQualityResult(
        quality_sigmas=list(sigmas),
        quality_variances=quality_variances,
        quantity_settings=[name for name, _ in quantity],
        quantity_variances=quantity_variances,
    )
