"""Switching attacks: how fast must an attacker hop to confuse RoboADS?

Section VI: "experienced attackers could frequently switch attack targets,
making mode estimation challenging. The resilience of our approach against
such attacks should be explored." This experiment explores it: an attacker
alternates the same bias between the IPS and the wheel-encoder workflows
with period ``T``, and we measure identification accuracy (fraction of
attacked iterations whose *exact* condition is reported) as ``T`` shrinks
toward the decision-window and consistency-memory timescales.

Expected shape: near-perfect identification for slow switching, degrading
as the period approaches the sliding windows' fill time (the detector still
*alarms* — raw detection barely degrades — but attributing the right sensor
lags the attacker).

Where do results go? ``run_switching`` returns a :class:`SwitchingResult`;
``benchmarks/bench_extensions.py`` persists the rendering to the artifact
store (``benchmarks/artifacts/``, with a
``benchmarks/results/switching.txt`` compat copy), and :func:`manifest`
wraps the period sweep as a single ``experiment`` campaign cell
(``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.base import Attack, AttackChannel
from ..attacks.catalog import Scenario
from ..attacks.sensor_attacks import sensor_bias
from ..eval.runner import run_scenario
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig

__all__ = ["SwitchingResult", "manifest", "run_switching"]


def manifest(seed: int = 900):
    """The switching-period sweep as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "switching",
        cells=[experiment_cell("switching", seed=seed)],
        description="Switching-attack extension: identification accuracy vs "
        "attacker hop period",
    )


@dataclass
class SwitchingResult:
    periods: list[float]
    identification_accuracy: list[float]
    alarm_recall: list[float]

    def format(self) -> str:
        rows = [
            [f"{period:.2f} s", f"{acc:.1%}", f"{recall:.1%}"]
            for period, acc, recall in zip(
                self.periods, self.identification_accuracy, self.alarm_recall
            )
        ]
        table = format_table(
            ["switch period", "exact identification", "alarm recall (any sensor)"],
            rows,
            title="Section VI extension: target-switching attacker (IPS <-> wheel encoder)",
        )
        return table + (
            "\nExpected shape: identification degrades as the period approaches the "
            "decision-window timescale; raw alarming degrades far less."
        )

    def monotone_degradation(self) -> bool:
        """Faster switching should never help the attacker's stealth much."""
        slowest = self.identification_accuracy[-1]
        fastest = self.identification_accuracy[0]
        return slowest >= fastest


def _switching_scenario(period: float, start: float = 4.0, stop: float = 18.0) -> Scenario:
    """Bias alternates between IPS and wheel encoder every *period* seconds."""

    def build() -> list[Attack]:
        attacks: list[Attack] = []
        t = start
        target_ips = True
        while t < stop:
            t_end = min(t + period, stop)
            if target_ips:
                attacks.append(
                    sensor_bias(
                        "ips",
                        offset=(0.07,),
                        start=t,
                        stop=t_end,
                        components=(0,),
                        channel=AttackChannel.CYBER,
                        name=f"ips-hop@{t:.2f}",
                    )
                )
            else:
                attacks.append(
                    sensor_bias(
                        "wheel_encoder",
                        offset=(0.0, 0.0, 0.12),
                        start=t,
                        stop=t_end,
                        channel=AttackChannel.CYBER,
                        name=f"we-hop@{t:.2f}",
                    )
                )
            target_ips = not target_ips
            t = t_end
        return attacks

    return Scenario(
        0,
        f"switching-{period:.2f}s",
        "attacker alternates corruption between IPS and wheel encoder",
        f"target switches every {period:.2f} s",
        build,
    )


def run_switching(
    periods=(0.25, 0.5, 1.0, 2.0, 4.0), seed: int = 900
) -> SwitchingResult:
    """Sweep the attacker's switching period on the Khepera."""
    rig = khepera_rig()
    rig.plan_path(0)
    accuracy: list[float] = []
    recall: list[float] = []
    for period in periods:
        result = run_scenario(rig, _switching_scenario(period), seed=seed, stop_at_goal=False)
        trace = result.trace
        attacked = [k for k in range(len(trace)) if trace.truth_sensors[k]]
        exact = sum(
            1
            for k in attacked
            if trace.reports[k] is not None
            and trace.reports[k].flagged_sensors == trace.truth_sensors[k]
        )
        any_alarm = sum(
            1
            for k in attacked
            if trace.reports[k] is not None and trace.reports[k].flagged_sensors
        )
        accuracy.append(exact / len(attacked) if attacked else 1.0)
        recall.append(any_alarm / len(attacked) if attacked else 1.0)
    return SwitchingResult(
        periods=list(periods),
        identification_accuracy=accuracy,
        alarm_recall=recall,
    )
