"""Fig 7: decision-parameter selection (ROC curves and F1 grids).

A pool of recorded runs (every Table II scenario plus clean missions) is
replayed offline through the decision maker under a dense grid of
``(alpha, w, c)`` configurations:

* Fig 7(a)/(b): ROC of sensor / actuator detection over alpha for
  c/w in {1/1, 3/3, 6/6};
* Fig 7(c): sensor-misbehavior F1 at alpha=0.005 over windows and criteria;
* Fig 7(d): actuator-misbehavior F1 at alpha=0.05 over windows and criteria.

The reproduced claims: the ROC hugs the top-left corner at sensible alphas;
for a fixed window, F1 rises then falls with the criteria (the paper's
"increases first and reduces afterward"); and the paper's chosen configs
(sensor 2/2 @ 0.005, actuator 3/6 @ 0.05) land at or near the optimum.

Where do results go? ``run_fig7`` returns a :class:`Fig7Result` (ROC and
F1 grids); ``benchmarks/bench_fig7.py`` persists the rendering to the
artifact store (``benchmarks/artifacts/``, with a
``benchmarks/results/fig7.txt`` compat copy), and :func:`manifest` wraps
the sweep as a single ``experiment`` campaign cell (``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attacks.catalog import khepera_scenarios
from ..eval.parallel import ParallelSpec, as_parallel_config, map_trials
from ..eval.runner import RunResult, _replay_chunk, monte_carlo, run_scenario
from ..eval.sweeps import SweepPoint, f1_sweep, roc_sweep
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig

__all__ = ["Fig7Result", "manifest", "run_fig7"]


def manifest(n_trials: int = 1, base_seed: int = 300):
    """The decision-parameter sweep as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "fig7",
        cells=[experiment_cell("fig7", n_trials=n_trials, base_seed=base_seed)],
        description="Fig 7 reproduction: decision-parameter ROC curves and "
        "F1 grids from replayed runs",
    )

DEFAULT_ALPHAS = (0.0005, 0.005, 0.02, 0.05, 0.2, 0.5, 0.8, 0.995)
DEFAULT_WC = ((1, 1), (3, 3), (6, 6))


@dataclass
class Fig7Result:
    """ROC points and F1 grids."""

    roc: dict[tuple[int, int], list[SweepPoint]]
    f1_points: list[SweepPoint]
    alphas: tuple[float, ...]
    n_runs: int

    def roc_series(self, window: int, criteria: int, channel: str) -> list[tuple[float, float]]:
        """(FPR, TPR) points for one c/w series of Fig 7a (sensor) / 7b."""
        points = self.roc[(window, criteria)]
        series = []
        for point in points:
            counts = point.sensor if channel == "sensor" else point.actuator
            series.append((counts.false_positive_rate, counts.true_positive_rate))
        return series

    def f1_grid(self, channel: str) -> dict[tuple[int, int], float]:
        """F1 keyed by (window, criteria) — Fig 7c / 7d."""
        grid = {}
        for point in self.f1_points:
            cfg = point.config
            counts = point.sensor if channel == "sensor" else point.actuator
            grid[(cfg.sensor_window, cfg.sensor_criteria)] = counts.f1
        return grid

    def best_config(self, channel: str) -> tuple[tuple[int, int], float]:
        grid = self.f1_grid(channel)
        best = max(grid, key=lambda key: grid[key])
        return best, grid[best]

    def format(self) -> str:
        blocks = []
        for channel, fig in (("sensor", "7a"), ("actuator", "7b")):
            rows = []
            for (w, c) in sorted(self.roc):
                series = self.roc_series(w, c, channel)
                cells = [f"({fpr:.3f},{tpr:.3f})" for fpr, tpr in series]
                rows.append([f"c/w={c}/{w}"] + cells)
            blocks.append(
                format_table(
                    ["series"] + [f"a={a:g}" for a in self.alphas],
                    rows,
                    title=f"Fig {fig}: {channel} ROC points (FPR,TPR) over alpha",
                )
            )
        for channel, fig in (("sensor", "7c"), ("actuator", "7d")):
            grid = self.f1_grid(channel)
            windows = sorted({w for w, _ in grid})
            max_c = max(c for _, c in grid)
            rows = []
            for w in windows:
                row = [f"w={w}"]
                for c in range(1, max_c + 1):
                    row.append(f"{grid[(w, c)]:.3f}" if (w, c) in grid else "")
                rows.append(row)
            best, best_f1 = self.best_config(channel)
            blocks.append(
                format_table(
                    ["window"] + [f"c={c}" for c in range(1, max_c + 1)],
                    rows,
                    title=f"Fig {fig}: {channel} F1 over (w, c); best c/w={best[1]}/{best[0]} F1={best_f1:.3f}",
                )
            )
        return "\n\n".join(blocks)


def collect_runs(
    n_trials: int = 1,
    base_seed: int = 300,
    n_clean: int = 2,
    parallel: ParallelSpec = None,
) -> list[RunResult]:
    """The run pool Fig 7's offline sweeps replay.

    ``parallel=`` fans the pool — every Table II scenario × trial plus the
    clean missions — out to worker processes as one grid. The seeds are the
    serial loop's (``base_seed + trial`` per scenario, ``base_seed + 50 + i``
    for the clean runs), so the pool is identical for any worker count.
    """
    rig = khepera_rig()
    rig.plan_path(0)
    scenarios = khepera_scenarios()
    config = as_parallel_config(parallel)
    if config is not None and config.resolved_workers() > 1:
        # Index len(scenarios) holds None = the clean mission.
        pool = tuple(scenarios) + (None,)
        items = [
            (scenario_index, base_seed + trial)
            for scenario_index in range(len(scenarios))
            for trial in range(n_trials)
        ]
        items += [(len(scenarios), base_seed + 50 + i) for i in range(n_clean)]
        payload = (rig, pool, {}, False)
        return [result for result, _ in map_trials(_replay_chunk, items, parallel=config, payload=payload)]
    runs: list[RunResult] = []
    for scenario in scenarios:
        runs.extend(monte_carlo(rig, scenario, n_trials, base_seed=base_seed))
    for i in range(n_clean):
        runs.append(run_scenario(rig, None, seed=base_seed + 50 + i))
    return runs


def run_fig7(
    n_trials: int = 1,
    base_seed: int = 300,
    alphas=DEFAULT_ALPHAS,
    wc_series=DEFAULT_WC,
    max_window: int = 6,
    parallel: ParallelSpec = None,
) -> Fig7Result:
    """Reproduce Fig 7's four panels from one pool of recorded runs.

    ``parallel=`` parallelizes the run-pool collection (the dominant cost);
    the offline decision sweeps that follow replay recorded statistics and
    stay in-process.
    """
    runs = collect_runs(n_trials=n_trials, base_seed=base_seed, parallel=parallel)
    roc = {
        (w, c): roc_sweep(runs, alphas, window=w, criteria=c)
        for (w, c) in wc_series
    }
    f1_points = f1_sweep(runs, windows=range(1, max_window + 1))
    return Fig7Result(
        roc=roc, f1_points=f1_points, alphas=tuple(alphas), n_runs=len(runs)
    )
