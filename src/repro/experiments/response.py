"""Response extension: navigation failover closes the detect-react loop.

The paper's conclusion leaves response algorithms as future work. This
experiment quantifies the natural first response on the paper's own
headline threat: a drifting IPS spoofer (the GPS-spoofing pattern of
Table I) that the planner navigates by. Without a response the planner
faithfully tracks the spoofed position and parks the robot wherever the
attacker chose; with :class:`~repro.core.response.NavigationFailover`, the
confirmed IPS alarm reroutes navigation to the wheel-encoder workflow and
the mission completes.

Where do results go? ``run_response`` returns a :class:`ResponseResult`;
``benchmarks/bench_extensions.py`` persists the rendering to the artifact
store (``benchmarks/artifacts/``, with a
``benchmarks/results/response.txt`` compat copy), and :func:`manifest`
wraps the paired missions as a single ``experiment`` campaign cell
(``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.catalog import Scenario
from ..attacks.sensor_attacks import sensor_spoof_ramp
from ..core.response import NavigationFailover, ResponseEvent
from ..eval.runner import run_scenario
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig

__all__ = ["ResponseResult", "manifest", "run_response"]


def manifest(seed: int = 800, spoof_rate: float = 0.03):
    """The response-failover comparison as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "response",
        cells=[experiment_cell("response", seed=seed, spoof_rate=spoof_rate)],
        description="Response extension: navigation failover vs a drifting "
        "IPS spoofer, with and without the responder",
    )


@dataclass
class ResponseResult:
    goal_error_without: float
    goal_error_with: float
    detection_delay: float | None
    failover_events: list[ResponseEvent]
    spoof_rate: float

    @property
    def mission_saved(self) -> bool:
        """Response keeps the robot near the goal despite the spoofer."""
        return self.goal_error_with < 0.25 and self.goal_error_without > 2.0 * self.goal_error_with

    def format(self) -> str:
        rows = [
            ["no response (navigate by spoofed IPS)", f"{self.goal_error_without:.3f} m"],
            ["navigation failover", f"{self.goal_error_with:.3f} m"],
        ]
        table = format_table(
            ["configuration", "final distance to goal"],
            rows,
            title=(
                "Response extension: IPS spoof ramp "
                f"({self.spoof_rate * 1000:.0f} mm/s drift) vs navigation failover"
            ),
        )
        lines = [table]
        if self.detection_delay is not None:
            lines.append(f"IPS misbehavior confirmed {self.detection_delay:.2f} s after trigger.")
        for event in self.failover_events:
            lines.append(
                f"t={event.time:.2f}s navigation switched to {event.source!r} ({event.reason})"
            )
        return "\n".join(lines)


def _spoof_scenario(rate: float) -> Scenario:
    return Scenario(
        0,
        "IPS spoof ramp",
        "drifting IPS spoofer steering the planner off course (sensor/physical)",
        f"x reading drifts at {rate} m/s from t=4s",
        lambda: [sensor_spoof_ramp("ips", rate=(rate,), start=4.0, components=(0,))],
    )


def run_response(seed: int = 800, spoof_rate: float = 0.03) -> ResponseResult:
    """Run the spoofed mission with and without the failover responder."""
    rig = khepera_rig()
    rig.plan_path(0)
    goal = np.array(rig.mission.goal)
    scenario = _spoof_scenario(spoof_rate)

    without = run_scenario(rig, scenario, seed=seed)
    error_without = float(np.linalg.norm(without.trace.true_states[-1][:2] - goal))

    responder = NavigationFailover(preference=("ips", "wheel_encoder"))
    with_response = run_scenario(rig, scenario, seed=seed, responder=responder)
    error_with = float(np.linalg.norm(with_response.trace.true_states[-1][:2] - goal))

    delays = [e.delay for e in with_response.delays_for("sensor") if e.delay is not None]
    return ResponseResult(
        goal_error_without=error_without,
        goal_error_with=error_with,
        detection_delay=delays[0] if delays else None,
        failover_events=responder.events,
        spoof_rate=spoof_rate,
    )
