"""Section V-H: evasive-attack magnitude bounds.

An attacker who wants to stay below the detection threshold must shrink the
attack vector. The paper finds that, under the chosen configuration, a
stealthy IPS shift must stay under 0.02 m and a wheel-controller speed
alteration under 900 speed units (0.006 m/s) — magnitudes too small to
matter operationally. This experiment sweeps both attack magnitudes and
reports the largest value that evades detection, plus the smallest that is
reliably caught.

Where do results go? ``run_evasive`` returns an :class:`EvasiveResult`;
``benchmarks/bench_evasive.py`` persists the rendering to the artifact
store (``benchmarks/artifacts/``, with a
``benchmarks/results/evasive.txt`` compat copy), and :func:`manifest`
wraps the sweep as a single ``experiment`` campaign cell
(``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..actuators.differential import SPEED_UNIT_M_PER_S
from ..attacks.base import AttackChannel
from ..attacks.catalog import Scenario
from ..attacks.actuator_attacks import actuator_offset
from ..attacks.sensor_attacks import sensor_bias
from ..eval.runner import run_scenario
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig

__all__ = ["EvasiveResult", "manifest", "run_evasive"]


def manifest(seed: int = 600):
    """The evasive-magnitude sweep as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "evasive",
        cells=[experiment_cell("evasive", seed=seed)],
        description="Section V-H reproduction: largest evading / smallest "
        "reliably-caught attack magnitudes",
    )


@dataclass
class EvasiveResult:
    ips_magnitudes: list[float]
    ips_detected: list[bool]
    wheel_magnitudes_units: list[float]
    wheel_detected: list[bool]

    @property
    def ips_stealth_bound(self) -> float:
        """Largest swept IPS shift that evaded detection (metres)."""
        undetected = [m for m, d in zip(self.ips_magnitudes, self.ips_detected) if not d]
        return max(undetected) if undetected else 0.0

    @property
    def wheel_stealth_bound_units(self) -> float:
        """Largest swept wheel alteration that evaded detection (speed units)."""
        undetected = [
            m for m, d in zip(self.wheel_magnitudes_units, self.wheel_detected) if not d
        ]
        return max(undetected) if undetected else 0.0

    def format(self) -> str:
        rows = [
            [f"{m * 1000:.1f} mm", "detected" if d else "stealthy"]
            for m, d in zip(self.ips_magnitudes, self.ips_detected)
        ]
        t1 = format_table(
            ["IPS shift", "outcome"],
            rows,
            title="Section V-H: stealthy IPS spoofing sweep",
        )
        rows = [
            [f"{int(m)} units ({m * SPEED_UNIT_M_PER_S * 1000:.2f} mm/s)", "detected" if d else "stealthy"]
            for m, d in zip(self.wheel_magnitudes_units, self.wheel_detected)
        ]
        t2 = format_table(
            ["Wheel speed alteration", "outcome"],
            rows,
            title="Section V-H: stealthy wheel-controller sweep",
        )
        return (
            t1
            + "\n\n"
            + t2
            + f"\n\nStealth bounds: IPS {self.ips_stealth_bound * 1000:.1f} mm "
            f"(paper: < 20 mm), wheels {self.wheel_stealth_bound_units:.0f} units "
            "(paper: < 900 units) — both far below the Table II attack magnitudes "
            "(70-100 mm, 6000 units)."
        )


def _ips_scenario(shift: float) -> Scenario:
    return Scenario(
        0,
        f"evasive-ips-{shift:.3f}",
        "stealthy IPS spoofing",
        f"shift {shift:+.3f} m on X",
        lambda: [
            sensor_bias(
                "ips", offset=(shift,), start=4.0, components=(0,), channel=AttackChannel.PHYSICAL
            )
        ],
    )


def _wheel_scenario(units: float) -> Scenario:
    magnitude = units * SPEED_UNIT_M_PER_S
    return Scenario(
        0,
        f"evasive-wheel-{units:.0f}u",
        "stealthy wheel-controller alteration",
        f"-/+{units:.0f} units on vL/vR",
        lambda: [actuator_offset("wheels", offset=(-magnitude, magnitude), start=4.0)],
    )


#: Fraction of attacked iterations that must raise the (correct) alarm for
#: the attack to count as detected. Real Table II attacks sustain ~100%
#: alarm duty; the decision maker's background false-alarm duty is a few
#: percent (the paper's own FPRs reach 3%), so "any alarm ever" would call
#: every magnitude detected. A 25% duty cleanly separates the two regimes.
DETECTION_DUTY = 0.25


def _attack_window(result) -> list[int]:
    return [
        k
        for k, (ts, ta) in enumerate(
            zip(result.trace.truth_sensors, result.trace.truth_actuator)
        )
        if ts or ta
    ]


def _sensor_detected(result) -> bool:
    window = _attack_window(result)
    if not window:
        return False
    hits = sum(
        1
        for k in window
        if result.trace.reports[k] is not None
        and "ips" in result.trace.reports[k].flagged_sensors
    )
    return hits >= DETECTION_DUTY * len(window)


def _actuator_detected(result) -> bool:
    window = _attack_window(result)
    if not window:
        return False
    hits = sum(
        1
        for k in window
        if result.trace.reports[k] is not None and result.trace.reports[k].actuator_alarm
    )
    return hits >= DETECTION_DUTY * len(window)


def run_evasive(
    seed: int = 600,
    ips_magnitudes=(0.002, 0.005, 0.010, 0.020, 0.035, 0.070),
    wheel_units=(150.0, 300.0, 600.0, 1200.0, 2400.0, 6000.0),
) -> EvasiveResult:
    """Sweep stealthy attack magnitudes on the Khepera."""
    rig = khepera_rig()
    rig.plan_path(0)
    ips_detected = []
    for shift in ips_magnitudes:
        result = run_scenario(rig, _ips_scenario(shift), seed=seed)
        ips_detected.append(_sensor_detected(result))
    wheel_detected = []
    for units in wheel_units:
        result = run_scenario(rig, _wheel_scenario(units), seed=seed)
        wheel_detected.append(_actuator_detected(result))
    return EvasiveResult(
        ips_magnitudes=list(ips_magnitudes),
        ips_detected=ips_detected,
        wheel_magnitudes_units=list(wheel_units),
        wheel_detected=wheel_detected,
    )
