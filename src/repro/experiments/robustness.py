"""Robustness study: detection quality under benign sensor-delivery faults.

Extension experiment (no paper counterpart — see ``docs/ROBUSTNESS.md``):
sweeps uniform delivery-dropout intensity against a slice of the Table II
Khepera catalog and reports the degradation curves. The zero-intensity
column doubles as a self-check — it runs the literal fault-free code path,
so its metrics must match a plain Table II cell at the same seeds.

Where do results go? ``run_robustness`` returns a
:class:`RobustnessResult` (``format()`` renders the degradation table);
:func:`manifest` exposes the intensity x scenario grid as
content-addressed campaign cells — the dashboard's fault-campaign grid
and degradation curves render from those artifacts
(``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..attacks.catalog import khepera_scenarios
from ..eval.fault_campaign import FaultCampaignResult, run_fault_campaign
from ..eval.parallel import ParallelSpec
from ..robots.khepera import khepera_rig

__all__ = ["RobustnessResult", "manifest", "run_robustness"]


def manifest(
    n_trials: int = 2,
    seed: int = 100,
    intensities: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    scenario_numbers: Sequence[int] = (1, 4),
):
    """The dropout-intensity sweep as a campaign manifest (intensity x scenario)."""
    from ..campaign.manifest import CampaignManifest, detection_grid

    return CampaignManifest(
        "robustness",
        cells=detection_grid(
            "khepera",
            list(scenario_numbers),
            intensities=intensities,
            n_trials=n_trials,
            base_seed=seed,
        ),
        description="Robustness extension: uniform sensor-delivery dropout "
        "intensity swept against Table II scenarios",
    )


@dataclass
class RobustnessResult:
    """Campaign result plus this experiment's framing."""

    campaign: FaultCampaignResult
    scenario_numbers: tuple[int, ...]

    def format(self) -> str:
        header = (
            "Robustness extension: uniform sensor-delivery dropout vs "
            f"Khepera scenarios {list(self.scenario_numbers)}\n"
        )
        return header + self.campaign.format()


def run_robustness(
    n_trials: int = 2,
    seed: int = 100,
    intensities: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    scenario_numbers: Sequence[int] | None = None,
    parallel: ParallelSpec = None,
) -> RobustnessResult:
    """Run the dropout-intensity sweep.

    *scenario_numbers* selects Table II rows by their paper numbering
    (default: #1 wheel-speed attack and #4 IPS bias — one actuator-channel
    and one sensor-channel detection under degradation). *parallel* fans the
    campaign's intensity × scenario × trial grid out to worker processes
    with serial-identical seed derivation.
    """
    numbers = tuple(scenario_numbers) if scenario_numbers is not None else (1, 4)
    catalog = [s for s in khepera_scenarios() if s.number in numbers]
    rig = khepera_rig()
    rig.plan_path(0)
    campaign = run_fault_campaign(
        rig,
        catalog,
        intensities=intensities,
        n_trials=n_trials,
        base_seed=seed,
        parallel=parallel,
    )
    return RobustnessResult(campaign=campaign, scenario_numbers=numbers)
