"""Table II: detection results over the eleven Khepera scenarios.

For every scenario the experiment reports, as the paper's Table II does:
the ground-truth misbehavior transition (``A0→1`` / ``S0→2→4`` labels from
Table III), the detected transition, per-channel detection delays, and the
sensor/actuator FPR/FNR averaged over Monte-Carlo trials.

Where do results go? ``run_table2`` returns a :class:`Table2Result`
(``format()`` renders the table); ``benchmarks/bench_table2.py`` persists
the rendering to the artifact store (``benchmarks/artifacts/``, with a
``benchmarks/results/table2.txt`` compat copy), and :func:`manifest`
exposes the scenario grid as content-addressed campaign cells for
``python -m repro.campaign`` and the dashboard (``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attacks.catalog import khepera_scenarios
from ..eval.metrics import ConfusionCounts
from ..eval.parallel import ParallelSpec, as_parallel_config, map_trials
from ..eval.runner import _replay_chunk, monte_carlo
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig
from .common import KHEPERA_SENSOR_ORDER, detected_sequence, truth_sequence

__all__ = ["Table2Row", "Table2Result", "manifest", "run_table2"]


def manifest(n_trials: int = 3, base_seed: int = 100):
    """The Table II grid as a campaign manifest (one detection cell per scenario)."""
    from ..campaign.manifest import CampaignManifest, detection_grid

    return CampaignManifest(
        "table2",
        cells=detection_grid(
            "khepera",
            [s.number for s in khepera_scenarios()],
            n_trials=n_trials,
            base_seed=base_seed,
        ),
        description="Table II reproduction: the eleven Khepera attack/failure "
        "scenarios as Monte-Carlo detection cells",
    )


@dataclass
class Table2Row:
    """One scenario's aggregated detection results."""

    number: int
    name: str
    detail: str
    truth_sensor_seq: str
    truth_actuator: str
    detected_sensor_seq: str
    sensor_delay: float | None
    actuator_delay: float | None
    sensor_fpr: float
    sensor_fnr: float
    actuator_fpr: float
    actuator_fnr: float
    identified: bool


@dataclass
class Table2Result:
    """All rows plus the paper's headline averages."""

    rows: list[Table2Row]
    n_trials: int

    @property
    def average_fpr(self) -> float:
        """Average FPR across channels and scenarios (paper quotes 0.86%)."""
        values = [r.sensor_fpr for r in self.rows] + [r.actuator_fpr for r in self.rows]
        return float(np.mean(values))

    @property
    def average_fnr(self) -> float:
        """Average FNR across channels and scenarios (paper quotes 0.97%)."""
        values = [r.sensor_fnr for r in self.rows] + [r.actuator_fnr for r in self.rows]
        return float(np.mean(values))

    @property
    def average_sensor_delay(self) -> float | None:
        delays = [r.sensor_delay for r in self.rows if r.sensor_delay is not None]
        return float(np.mean(delays)) if delays else None

    @property
    def average_actuator_delay(self) -> float | None:
        delays = [r.actuator_delay for r in self.rows if r.actuator_delay is not None]
        return float(np.mean(delays)) if delays else None

    def format(self) -> str:
        rows = []
        for r in self.rows:
            rows.append(
                [
                    r.number,
                    r.name[:34],
                    f"{r.truth_actuator} {r.truth_sensor_seq}",
                    r.detected_sensor_seq,
                    "-" if r.sensor_delay is None else f"{r.sensor_delay:.2f}",
                    "-" if r.actuator_delay is None else f"{r.actuator_delay:.2f}",
                    f"{r.sensor_fpr:.2%}/{r.sensor_fnr:.2%}",
                    f"{r.actuator_fpr:.2%}/{r.actuator_fnr:.2%}",
                    "yes" if r.identified else "NO",
                ]
            )
        table = format_table(
            [
                "#",
                "Scenario",
                "Truth (A / S)",
                "Detected S-seq",
                "dS(s)",
                "dA(s)",
                "S FPR/FNR",
                "A FPR/FNR",
                "ident.",
            ],
            rows,
            title=f"Table II reproduction ({self.n_trials} trials/scenario)",
        )
        footer = (
            f"\nAverages: FPR {self.average_fpr:.2%} (paper 0.86%), "
            f"FNR {self.average_fnr:.2%} (paper 0.97%), "
            f"sensor delay {self._fmt(self.average_sensor_delay)} (paper 0.35s), "
            f"actuator delay {self._fmt(self.average_actuator_delay)} (paper 0.61s)"
        )
        return table + footer

    @staticmethod
    def _fmt(value: float | None) -> str:
        return "n/a" if value is None else f"{value:.2f}s"


def _table2_row(scenario, results) -> Table2Row:
    """Aggregate one scenario's Monte-Carlo results into its table row."""
    sensor_total, actuator_total = ConfusionCounts(), ConfusionCounts()
    sensor_delays: list[float] = []
    actuator_delays: list[float] = []
    identified = True
    for result in results:
        sensor_total.add(result.sensor_confusion)
        actuator_total.add(result.actuator_confusion)
        for event in result.delays:
            if event.delay is None:
                # A truth transition never identified within its window
                # counts against identification unless the window was so
                # short the decision window could not fill.
                identified = False
                continue
            if event.channel == "sensor":
                sensor_delays.append(event.delay)
            else:
                actuator_delays.append(event.delay)
    reference = results[0]
    truth_a = "A0→1" if any(reference.trace.truth_actuator) else "A0"
    if reference.trace.truth_actuator and reference.trace.truth_actuator[0]:
        truth_a = "A1"
    return Table2Row(
        number=scenario.number,
        name=scenario.name,
        detail=scenario.detail,
        truth_sensor_seq=truth_sequence(reference.trace, KHEPERA_SENSOR_ORDER),
        truth_actuator=truth_a,
        detected_sensor_seq=detected_sequence(reference.trace, KHEPERA_SENSOR_ORDER),
        sensor_delay=float(np.mean(sensor_delays)) if sensor_delays else None,
        actuator_delay=float(np.mean(actuator_delays)) if actuator_delays else None,
        sensor_fpr=sensor_total.false_positive_rate,
        sensor_fnr=sensor_total.false_negative_rate,
        actuator_fpr=actuator_total.false_positive_rate,
        actuator_fnr=actuator_total.false_negative_rate,
        identified=identified,
    )


def run_table2(
    n_trials: int = 3,
    base_seed: int = 100,
    batched: bool = False,
    parallel: ParallelSpec = None,
) -> Table2Result:
    """Reproduce Table II with *n_trials* Monte-Carlo trials per scenario.

    ``batched=True`` simulates the trials open-loop and replays them through
    a single detector via :func:`repro.core.batch.replay_batch` — same
    reports and metrics (there is no responder in these missions), less
    per-trial detector setup.

    ``parallel=`` fans the full scenarios × trials grid out to worker
    processes (one pool for the whole table, so load balances across
    scenarios of different mission lengths); per-trial seeds are derived
    exactly as the serial loops derive them, so the table is identical for
    any worker count.
    """
    rig = khepera_rig()
    rig.plan_path(0)
    scenarios = khepera_scenarios()
    config = as_parallel_config(parallel)
    if config is not None and config.resolved_workers() > 1:
        items = [
            (scenario_index, base_seed + trial)
            for scenario_index in range(len(scenarios))
            for trial in range(n_trials)
        ]
        payload = (rig, tuple(scenarios), {}, False)
        flat = map_trials(_replay_chunk, items, parallel=config, payload=payload)
        per_scenario = [
            [flat[scenario_index * n_trials + trial][0] for trial in range(n_trials)]
            for scenario_index in range(len(scenarios))
        ]
    else:
        per_scenario = [
            monte_carlo(rig, scenario, n_trials, base_seed=base_seed, batched=batched)
            for scenario in scenarios
        ]
    rows = [
        _table2_row(scenario, results)
        for scenario, results in zip(scenarios, per_scenario)
    ]
    return Table2Result(rows=rows, n_trials=n_trials)
