"""Ablations for the Section VI design discussions.

Three studies the paper discusses qualitatively, quantified here:

1. **Mode-set selection** — single-reference modes (M = p, the paper's
   choice) versus the complete mode set (M = 2^p - 1): identification
   accuracy and per-iteration cost.
2. **Sliding-window necessity** — the windows exist "to reduce the impact
   of transient faults, e.g. uneven ground or bumps" (Section IV-D). A
   two-iteration IPS glitch raises a (false) misbehavior alarm under small
   windows and is suppressed by larger ones; a *persistent* model mismatch
   (a drifting tick-integrating odometry workflow) defeats any window —
   windows tolerate transients, they cannot fix a wrong noise model.
3. **Sensor grouping** — a heading-only magnetometer cannot serve as a
   reference on its own (the engine refuses with an
   :class:`~repro.errors.ObservabilityError`); grouped with a GPS it can
   (Section VI, "Sensor capabilities").

Where do results go? ``run_ablation`` returns an :class:`AblationResult`;
``benchmarks/bench_ablation.py`` persists the rendering to the artifact
store (``benchmarks/artifacts/``, with a
``benchmarks/results/ablation.txt`` compat copy), and :func:`manifest`
wraps the three studies as a single ``experiment`` campaign cell
(``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..attacks.catalog import khepera_scenarios
from ..core.decision import DecisionConfig
from ..core.modes import Mode, complete_modes, single_reference_modes
from ..dynamics.unicycle import UnicycleModel
from ..errors import ObservabilityError
from ..eval.runner import run_scenario
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig
from ..sensors.gps import GPS
from ..sensors.magnetometer import Magnetometer
from ..sensors.pose_sensors import IPS
from ..sensors.suite import SensorGroup, SensorSuite
from ..core.nuise import NuiseFilter

__all__ = ["AblationResult", "manifest", "run_ablation"]


def manifest(seed: int = 700):
    """The three Section VI ablation studies as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "ablation",
        cells=[experiment_cell("ablation", seed=seed)],
        description="Section VI ablations: mode-set selection, sliding-window "
        "necessity, sensor grouping",
    )


@dataclass
class AblationResult:
    modeset_rows: list[tuple[str, int, float, float, float]]
    window_rows: list[tuple[str, float]]
    grouping_lines: list[str]

    def format(self) -> str:
        t1 = format_table(
            ["mode set", "modes", "sensor FPR", "sensor FNR", "ms/iteration"],
            [
                [name, n, f"{fpr:.2%}", f"{fnr:.2%}", f"{ms:.2f}"]
                for name, n, fpr, fnr, ms in self.modeset_rows
            ],
            title="Ablation 1: single-reference vs complete mode set (scenario #11)",
        )
        t2 = format_table(
            ["decision config", "transient-glitch alarm rate", "drifting-odometry FPR"],
            [
                [name, f"{glitch:.0%}", f"{drift:.2%}"]
                for name, glitch, drift in self.window_rows
            ],
            title="Ablation 2: sliding windows — transient faults vs persistent mismatch",
        )
        t3 = "Ablation 3: sensor grouping (Section VI)\n" + "\n".join(
            f"  - {line}" for line in self.grouping_lines
        )
        return "\n\n".join([t1, t2, t3])


def _modeset_study(seed: int) -> list[tuple[str, int, float, float, float]]:
    rig = khepera_rig()
    rig.plan_path(0)
    scenario = next(s for s in khepera_scenarios() if s.number == 11)
    rows = []
    for name, modes in (
        ("single-reference", single_reference_modes(rig.suite)),
        ("complete", complete_modes(rig.suite, max_corrupted=2)),
    ):
        start = time.perf_counter()
        result = run_scenario(rig, scenario, seed=seed, modes=modes)
        elapsed = time.perf_counter() - start
        per_iter_ms = 1000.0 * elapsed / max(len(result.trace), 1)
        rows.append(
            (
                name,
                len(modes),
                result.sensor_confusion.false_positive_rate,
                result.sensor_confusion.false_negative_rate,
                per_iter_ms,
            )
        )
    return rows


def _transient_glitch_scenario(rig) -> "Scenario":
    from ..attacks.catalog import Scenario
    from ..attacks.sensor_attacks import sensor_bias

    dt = rig.model.dt
    return Scenario(
        0,
        "transient-ips-glitch",
        "a bump shakes the IPS markers for two control iterations",
        "+0.05 m on X for 0.1 s",
        lambda: [
            sensor_bias("ips", offset=(0.05,), start=6.0, stop=6.0 + 2 * dt, components=(0,))
        ],
    )


def _window_study(seed: int, n_trials: int = 3) -> list[tuple[str, float, float]]:
    feature_rig = khepera_rig()
    feature_rig.plan_path(0)
    drift_rig = khepera_rig(odometry_mode="raw")
    drift_rig.plan_path(0)
    glitch = _transient_glitch_scenario(feature_rig)
    rows = []
    for w, c in ((1, 1), (2, 2), (3, 3), (4, 4)):
        decision = DecisionConfig(sensor_window=w, sensor_criteria=c)
        alarms = 0
        for trial in range(n_trials):
            result = run_scenario(feature_rig, glitch, seed=seed + trial, decision=decision)
            if any(
                r is not None and r.flagged_sensors for r in result.trace.reports
            ):
                alarms += 1
        drift_result = run_scenario(drift_rig, None, seed=seed, decision=decision)
        rows.append(
            (
                f"sensor c/w={c}/{w}",
                alarms / n_trials,
                drift_result.sensor_confusion.false_positive_rate,
            )
        )
    return rows


def _grouping_study() -> list[str]:
    model = UnicycleModel()
    ips = IPS()
    gps = GPS(sigma_xy=0.05)
    magnetometer = Magnetometer()
    lines = []

    ungrouped = SensorSuite([ips, gps, magnetometer])
    try:
        NuiseFilter(
            model,
            ungrouped,
            Mode.for_suite(ungrouped, ("magnetometer",)),
            process_noise=1e-6,
            nominal_control=np.array([0.1, 0.05]),
        )
        lines.append("magnetometer-only reference unexpectedly accepted (BUG)")
    except ObservabilityError:
        lines.append(
            "magnetometer-only reference rejected (ObservabilityError), as expected"
        )

    grouped_sensor = SensorGroup("gps+mag", [gps, magnetometer])
    grouped = SensorSuite([ips, grouped_sensor])
    NuiseFilter(
        model,
        grouped,
        Mode.for_suite(grouped, ("gps+mag",)),
        process_noise=1e-6,
        nominal_control=np.array([0.1, 0.05]),
    )
    lines.append("GPS+magnetometer group accepted as a reference unit")
    return lines


def run_ablation(seed: int = 700) -> AblationResult:
    """Run all three Section VI ablations."""
    return AblationResult(
        modeset_rows=_modeset_study(seed),
        window_rows=_window_study(seed),
        grouping_lines=_grouping_study(),
    )
