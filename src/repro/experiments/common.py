"""Shared experiment helpers: Table III condition labels and sequences."""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..sim.trace import SimulationTrace

__all__ = [
    "KHEPERA_SENSOR_ORDER",
    "TAMIYA_SENSOR_ORDER",
    "sensor_mode_table",
    "condition_label",
    "condition_sequence",
    "truth_sequence",
    "detected_sequence",
]

#: Suite ordering used for the S-mode numbering (paper Table III: S1=IPS,
#: S2=wheel encoder, S3=LiDAR, S4=WE+LiDAR, S5=IPS+LiDAR, S6=IPS+WE).
KHEPERA_SENSOR_ORDER = ("ips", "wheel_encoder", "lidar")
TAMIYA_SENSOR_ORDER = ("ips", "imu", "lidar")


def sensor_mode_table(sensor_order: Sequence[str] = KHEPERA_SENSOR_ORDER) -> dict[frozenset, str]:
    """Mapping from corrupted-sensor sets to Table III mode labels.

    The paper enumerates singles first (S1..Sp), then pairs in Table III's
    order (complements of the singles, reversed), then larger subsets.
    """
    order = list(sensor_order)
    table: dict[frozenset, str] = {frozenset(): "S0"}
    index = 1
    for name in order:
        table[frozenset({name})] = f"S{index}"
        index += 1
    # Pairs: Table III lists S4 = WE+LiDAR, S5 = IPS+LiDAR, S6 = IPS+WE,
    # i.e. each pair is the complement of a single, in S1..S3 order.
    for name in order:
        pair = frozenset(order) - {name}
        if len(pair) == 2:
            table[pair] = f"S{index}"
            index += 1
    # Any remaining subsets (3 sensors and beyond, for complete mode sets).
    for r in range(3, len(order) + 1):
        for combo in itertools.combinations(order, r):
            table[frozenset(combo)] = f"S{index}"
            index += 1
    return table


def condition_label(
    corrupted: Iterable[str], sensor_order: Sequence[str] = KHEPERA_SENSOR_ORDER
) -> str:
    """Table III label (``"S0"``..) for a corrupted-sensor set."""
    table = sensor_mode_table(sensor_order)
    key = frozenset(corrupted)
    if key not in table:
        return "S?" + "+".join(sorted(key))
    return table[key]


def _compress(labels: Sequence[str], min_run: int = 1) -> list[str]:
    """Collapse consecutive duplicates, dropping runs shorter than min_run."""
    out: list[str] = []
    run_label, run_len = None, 0
    for label in labels:
        if label == run_label:
            run_len += 1
            continue
        if run_label is not None and run_len >= min_run:
            if not out or out[-1] != run_label:
                out.append(run_label)
        run_label, run_len = label, 1
    if run_label is not None and run_len >= min_run:
        if not out or out[-1] != run_label:
            out.append(run_label)
    return out


def truth_sequence(trace: SimulationTrace, sensor_order: Sequence[str]) -> str:
    """Ground-truth sensor-condition transitions, e.g. ``"S0→2→4"``."""
    labels = [condition_label(s, sensor_order) for s in trace.truth_sensors]
    seq = _compress(labels)
    return _arrow(seq)


def detected_sequence(
    trace: SimulationTrace, sensor_order: Sequence[str], min_run: int = 4
) -> str:
    """Detected sensor-condition transitions (short flickers suppressed)."""
    labels = [
        condition_label(frozenset() if r is None else r.flagged_sensors, sensor_order)
        for r in trace.reports
    ]
    return _arrow(_compress(labels, min_run=min_run))


def condition_sequence(labels: Sequence[str], min_run: int = 1) -> str:
    """Compress an arbitrary label sequence into an arrow string."""
    return _arrow(_compress(labels, min_run=min_run))


def _arrow(seq: Sequence[str]) -> str:
    if not seq:
        return "S0"
    # "S0→1→3" style: strip the repeated "S" prefix after the first element.
    head = seq[0]
    tail = [s[1:] if s.startswith("S") else s for s in seq[1:]]
    return "→".join([head] + tail)
