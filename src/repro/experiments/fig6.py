"""Fig 6: raw multi-mode estimation engine outputs for scenario #8.

The figure's eight panels are reproduced as time series:

1. IPS sensor anomaly estimates (x, y, theta),
2. wheel-encoder sensor anomaly estimates (x, y, theta),
3. LiDAR sensor anomaly estimates (three wall distances + theta),
4. actuator anomaly estimates (left/right wheel),
5. aggregate sensor Chi-square statistic vs its alpha=0.005 threshold,
6. sensor mode selection (Table III S-index),
7. actuator Chi-square statistic vs its alpha=0.05 threshold,
8. actuator mode selection (A0/A1).

In scenario #8 the IPS logic bomb triggers at 4 s (+0.07 m on X) and the
wheel-controller logic bomb at 10 s (-/+6000 speed units): panel 1's x
component must step to ~0.07 while wheel-encoder and LiDAR anomalies stay
silent, and panel 4 must deviate after 10 s — the checks
:meth:`Fig6Result.checkpoints` quantifies.

Where do results go? ``run_fig6`` returns a :class:`Fig6Result` (panel
time series plus checkpoint assertions); ``benchmarks/bench_fig6.py``
persists the rendering to the artifact store (``benchmarks/artifacts/``,
with a ``benchmarks/results/fig6.txt`` compat copy), and :func:`manifest`
wraps the run as a single ``experiment`` campaign cell
(``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..actuators.differential import SPEED_UNIT_M_PER_S
from ..attacks.catalog import khepera_scenarios
from ..core.chi2 import chi_square_threshold
from ..eval.runner import run_scenario
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig
from .common import KHEPERA_SENSOR_ORDER, condition_label

__all__ = ["Fig6Result", "manifest", "run_fig6"]


def manifest(seed: int = 42):
    """Fig 6's single scenario-#8 mission as a one-cell campaign manifest."""
    from ..campaign.manifest import CampaignManifest, experiment_cell

    return CampaignManifest(
        "fig6",
        cells=[experiment_cell("fig6", seed=seed)],
        description="Fig 6 reproduction: raw estimation-engine outputs for "
        "scenario #8",
    )


@dataclass
class Fig6Result:
    """The eight panels as arrays (NaN where a sensor was the reference)."""

    times: np.ndarray
    ips_anomaly: np.ndarray        # (n, 3)
    wheel_encoder_anomaly: np.ndarray  # (n, 3)
    lidar_anomaly: np.ndarray      # (n, 4)
    actuator_anomaly: np.ndarray   # (n, 2)
    sensor_statistic: np.ndarray   # (n,)
    sensor_threshold: np.ndarray   # (n,)
    sensor_mode_index: np.ndarray  # (n,) Table III S-number
    actuator_statistic: np.ndarray  # (n,)
    actuator_threshold: np.ndarray  # (n,)
    actuator_mode: np.ndarray      # (n,) 0/1
    ips_trigger: float = 4.0
    wheel_trigger: float = 10.0

    def _window(self, lo: float, hi: float) -> np.ndarray:
        return (self.times >= lo) & (self.times < hi)

    def checkpoints(self) -> dict[str, float]:
        """Quantitative checks mirroring the paper's Fig 6 narration."""
        before = self._window(1.0, self.ips_trigger)
        after_ips = self._window(self.ips_trigger + 0.5, self.wheel_trigger)
        after_wheel = self._window(self.wheel_trigger + 0.5, float(self.times[-1]))
        with np.errstate(invalid="ignore"):
            out = {
                "ips_x_before": float(np.nanmean(self.ips_anomaly[before, 0])),
                "ips_x_after": float(np.nanmean(self.ips_anomaly[after_ips, 0])),
                "ips_x_after_std": float(np.nanstd(self.ips_anomaly[after_ips, 0])),
                "we_x_after": float(np.nanmean(np.abs(self.wheel_encoder_anomaly[after_ips, 0]))),
                "lidar_d_after": float(np.nanmean(np.abs(self.lidar_anomaly[after_ips, :3]))),
                "actuator_diff_after": float(
                    np.nanmean(
                        self.actuator_anomaly[after_wheel, 1]
                        - self.actuator_anomaly[after_wheel, 0]
                    )
                ),
                "sensor_mode_after_ips": float(np.median(self.sensor_mode_index[after_ips])),
                "actuator_mode_after_wheel": float(np.mean(self.actuator_mode[after_wheel])),
            }
        return out

    def to_csv(self, path) -> None:
        """Export all eight panels as one CSV (column per series) for plotting."""
        import csv

        headers = (
            ["t"]
            + [f"ips_{c}" for c in ("x", "y", "theta")]
            + [f"we_{c}" for c in ("x", "y", "theta")]
            + [f"lidar_{c}" for c in ("d1", "d2", "d3", "theta")]
            + ["da_left", "da_right", "sensor_stat", "sensor_thr",
               "sensor_mode", "actuator_stat", "actuator_thr", "actuator_mode"]
        )
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(headers)
            for k in range(len(self.times)):
                writer.writerow(
                    [self.times[k]]
                    + list(self.ips_anomaly[k])
                    + list(self.wheel_encoder_anomaly[k])
                    + list(self.lidar_anomaly[k])
                    + list(self.actuator_anomaly[k])
                    + [
                        self.sensor_statistic[k],
                        self.sensor_threshold[k],
                        self.sensor_mode_index[k],
                        self.actuator_statistic[k],
                        self.actuator_threshold[k],
                        self.actuator_mode[k],
                    ]
                )

    def format(self) -> str:
        cp = self.checkpoints()
        expected_diff = 2 * 6000 * SPEED_UNIT_M_PER_S
        rows = [
            ["(1) IPS anomaly x, before 4s", f"{cp['ips_x_before']:+.4f} m", "~0"],
            ["(1) IPS anomaly x, 4s-10s", f"{cp['ips_x_after']:+.4f} m", "+0.07 m (paper: +0.069±0.002)"],
            ["(2) |WE anomaly x|, 4s-10s", f"{cp['we_x_after']:.4f} m", "silent (~noise)"],
            ["(3) |LiDAR distance anomalies|, 4s-10s", f"{cp['lidar_d_after']:.4f} m", "silent (~noise)"],
            [
                "(4) actuator anomaly vR-vL, after 10s",
                f"{cp['actuator_diff_after']:+.4f} m/s",
                f"{expected_diff:+.4f} m/s (12000 units)",
            ],
            ["(6) median sensor mode, 4s-10s", f"S{int(cp['sensor_mode_after_ips'])}", "S1 (IPS misbehaving)"],
            ["(8) actuator mode duty, after 10s", f"{cp['actuator_mode_after_wheel']:.0%}", "~100% (A1)"],
        ]
        return format_table(
            ["Fig 6 panel checkpoint", "measured", "expected"],
            rows,
            title="Fig 6 reproduction (scenario #8 raw engine outputs)",
        )


def run_fig6(seed: int = 42) -> Fig6Result:
    """Run scenario #8 once and assemble the eight Fig 6 panels."""
    rig = khepera_rig()
    rig.plan_path(0)
    scenario = khepera_scenarios()[7]
    assert scenario.number == 8
    result = run_scenario(rig, scenario, seed=seed, stop_at_goal=False)
    trace = result.trace
    n = len(trace)
    mode_table_order = KHEPERA_SENSOR_ORDER

    def empty(cols: int) -> np.ndarray:
        return np.full((n, cols), np.nan)

    ips = empty(3)
    we = empty(3)
    lidar = empty(4)
    actuator = np.zeros((n, 2))
    s_stat = np.zeros(n)
    s_thr = np.zeros(n)
    s_mode = np.zeros(n, dtype=int)
    a_stat = np.zeros(n)
    a_thr = np.zeros(n)
    a_mode = np.zeros(n, dtype=int)

    decision = rig.detector().decision_config
    for k, report in enumerate(trace.reports):
        st = report.statistics
        readings = rig.suite.split(trace.readings[k])
        for name, arr in (("ips", ips), ("wheel_encoder", we), ("lidar", lidar)):
            sensor_stat = st.sensor_stats.get(name)
            if sensor_stat is not None:
                arr[k, : sensor_stat.estimate.shape[0]] = sensor_stat.estimate
            else:
                # The selected mode's reference sensor has no d_hat^s of its
                # own; plot its residual against the committed state instead
                # (identical formula, Algorithm 2 line 15).
                residual = rig.suite.sensor(name).residual(
                    readings[name], st.state_estimate
                )
                arr[k, : residual.shape[0]] = residual
        actuator[k] = st.actuator_estimate
        s_stat[k] = st.sensor_statistic
        s_thr[k] = (
            chi_square_threshold(decision.sensor_alpha, st.sensor_dof)
            if st.sensor_dof > 0
            else np.nan
        )
        label = condition_label(report.flagged_sensors, mode_table_order)
        s_mode[k] = int(label[1:]) if label[1:].isdigit() else -1
        a_stat[k] = st.actuator_statistic
        a_thr[k] = (
            chi_square_threshold(decision.actuator_alpha, st.actuator_dof)
            if st.actuator_dof > 0
            else np.nan
        )
        a_mode[k] = 1 if report.actuator_alarm else 0

    return Fig6Result(
        times=trace.times_array(),
        ips_anomaly=ips,
        wheel_encoder_anomaly=we,
        lidar_anomaly=lidar,
        actuator_anomaly=actuator,
        sensor_statistic=s_stat,
        sensor_threshold=s_thr,
        sensor_mode_index=s_mode,
        actuator_statistic=a_stat,
        actuator_threshold=a_thr,
        actuator_mode=a_mode,
    )
