"""Table IV: actuator anomaly quantification variance vs sensor settings.

The paper shows that fusing more (and better) reference sensors strictly
reduces the variance of the actuator anomaly estimates: each single sensor
is evaluated as the sole reference, then all three fused. The *ordering*
(IPS best single, LiDAR worst, fusion better than any single) is the
reproduced claim; absolute numbers depend on the testbed's noise floors.

Where do results go? ``run_table4`` returns a :class:`Table4Result`;
``benchmarks/bench_table4.py`` persists the rendering to the artifact
store (``benchmarks/artifacts/``, with a ``benchmarks/results/table4.txt``
compat copy), and :func:`manifest` exposes one ``table4_setting`` campaign
cell per reference-sensor setting (``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.modes import Mode
from ..eval.parallel import ParallelSpec, as_parallel_config, map_trials
from ..eval.runner import run_scenario
from ..eval.tables import format_table
from ..robots.khepera import khepera_rig

__all__ = ["Table4Result", "manifest", "run_table4"]


def manifest(seed: int = 200, duration: float = 18.0):
    """The Table IV settings as a campaign manifest (one cell per setting)."""
    from ..campaign.manifest import CampaignManifest, CellSpec

    slugs = {
        "IPS": "ips",
        "Wheel encoder": "wheel-encoder",
        "LiDAR": "lidar",
        "All 3 sensors": "fused",
    }
    cells = [
        CellSpec(
            cell_id=f"table4/{slugs[setting]}",
            kind="table4_setting",
            config={
                "setting": setting,
                "rig": "khepera",
                "seed": int(seed),
                "duration": float(duration),
            },
        )
        for setting, _ in SENSOR_SETTINGS
    ]
    return CampaignManifest(
        "table4",
        cells=cells,
        description="Table IV reproduction: actuator-anomaly variance per "
        "reference-sensor setting",
    )

SENSOR_SETTINGS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("IPS", ("ips",)),
    ("Wheel encoder", ("wheel_encoder",)),
    ("LiDAR", ("lidar",)),
    ("All 3 sensors", ("ips", "wheel_encoder", "lidar")),
)


@dataclass
class Table4Result:
    """Empirical variance of ``d_hat^a`` components per reference setting."""

    variances: dict[str, tuple[float, float]]
    theoretical: dict[str, tuple[float, float]]
    n_iterations: int

    def format(self) -> str:
        rows = []
        for setting, _ in SENSOR_SETTINGS:
            emp = self.variances[setting]
            theo = self.theoretical[setting]
            rows.append(
                [
                    setting,
                    f"{emp[0]:.3e}",
                    f"{emp[1]:.3e}",
                    f"{theo[0]:.3e}",
                    f"{theo[1]:.3e}",
                ]
            )
        table = format_table(
            ["Sensor settings", "Var(d_a) Vl (emp)", "Var(d_a) Vr (emp)", "Vl (filter P_a)", "Vr (filter P_a)"],
            rows,
            title=f"Table IV reproduction (clean mission, {self.n_iterations} iterations)",
        )
        return table + (
            "\nExpected ordering (paper): IPS < wheel encoder << LiDAR; "
            "all-3 fusion <= best single sensor."
        )

    def ordering_holds(self) -> bool:
        """The paper's qualitative claim on the empirical variances."""
        ips = self.variances["IPS"]
        we = self.variances["Wheel encoder"]
        lidar = self.variances["LiDAR"]
        fused = self.variances["All 3 sensors"]
        per_setting = {k: float(np.mean(v)) for k, v in self.variances.items()}
        return (
            per_setting["IPS"] < per_setting["LiDAR"]
            and per_setting["Wheel encoder"] < per_setting["LiDAR"]
            and per_setting["All 3 sensors"] <= per_setting["IPS"] * 1.05
        )


def _setting_stats(result) -> tuple[tuple[float, float], tuple[float, float], int]:
    """Reduce one clean run to (empirical variances, filter variances, count)."""
    estimates = np.array(
        [r.statistics.actuator_estimate for r in result.reports]
    )
    covariances = np.array(
        [np.diag(r.statistics.actuator_covariance) for r in result.reports]
    )
    # Skip the initial convergence transient of the shared covariance.
    skip = min(20, len(estimates) // 4)
    estimates = estimates[skip:]
    covariances = covariances[skip:]
    emp = estimates.var(axis=0, ddof=1)
    theo = covariances.mean(axis=0)
    return (
        (float(emp[0]), float(emp[1])),
        (float(theo[0]), float(theo[1])),
        len(estimates),
    )


def _table4_chunk(payload, items):
    """Worker: run one clean mission per sensor setting, reduced to its stats.

    Each setting needs its own detector mode bank, so the grid is settings
    (not seeds) and the reduction happens worker-side — only the small stats
    tuples travel back to the parent.
    """
    rig, seed, duration = payload
    out = []
    for setting_index in items:
        _, reference = SENSOR_SETTINGS[setting_index]
        mode = Mode.for_suite(rig.suite, reference)
        result = run_scenario(
            rig, None, seed=seed, modes=[mode], duration=duration, stop_at_goal=False
        )
        out.append(_setting_stats(result))
    return out


def run_table4(
    seed: int = 200, duration: float = 18.0, parallel: ParallelSpec = None
) -> Table4Result:
    """Clean mission per reference setting; collect ``d_hat^a`` statistics.

    ``parallel=`` runs the four sensor settings in worker processes (every
    setting uses the same mission *seed*, as the serial loop does, so results
    are identical for any worker count).
    """
    rig = khepera_rig()
    rig.plan_path(0)
    config = as_parallel_config(parallel)
    if config is not None and config.resolved_workers() > 1:
        # One setting per chunk: the settings are the natural work unit and
        # there are only four of them.
        if config.chunk_size == 0:
            config = replace(config, chunk_size=1)
        stats = map_trials(
            _table4_chunk,
            list(range(len(SENSOR_SETTINGS))),
            parallel=config,
            payload=(rig, seed, duration),
        )
    else:
        stats = _table4_chunk((rig, seed, duration), list(range(len(SENSOR_SETTINGS))))
    variances: dict[str, tuple[float, float]] = {}
    theoretical: dict[str, tuple[float, float]] = {}
    n_iterations = 0
    for (setting, _), (emp, theo, count) in zip(SENSOR_SETTINGS, stats):
        variances[setting] = emp
        theoretical[setting] = theo
        n_iterations = count
    return Table4Result(
        variances=variances, theoretical=theoretical, n_iterations=n_iterations
    )
