"""Paper experiments: one module per table/figure (see DESIGN.md index).

Every experiment exposes a ``run_*`` function returning a structured result
object with a ``format()`` method that prints the same rows/series the paper
reports. The benchmark harness under ``benchmarks/`` calls these functions.
"""

from .common import (
    KHEPERA_SENSOR_ORDER,
    condition_label,
    condition_sequence,
    sensor_mode_table,
)
from .table2 import Table2Result, run_table2
from .table4 import Table4Result, run_table4
from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .tamiya_eval import TamiyaResult, run_tamiya_eval
from .linear_benchmark import LinearBenchmarkResult, run_linear_benchmark
from .evasive import EvasiveResult, run_evasive
from .ablation import AblationResult, run_ablation
from .response import ResponseResult, run_response
from .robustness import RobustnessResult, run_robustness
from .sensor_quality import SensorQualityResult, run_sensor_quality
from .switching import SwitchingResult, run_switching

__all__ = [
    "KHEPERA_SENSOR_ORDER",
    "condition_label",
    "condition_sequence",
    "sensor_mode_table",
    "run_table2",
    "Table2Result",
    "run_table4",
    "Table4Result",
    "run_fig6",
    "Fig6Result",
    "run_fig7",
    "Fig7Result",
    "run_tamiya_eval",
    "TamiyaResult",
    "run_linear_benchmark",
    "LinearBenchmarkResult",
    "run_evasive",
    "EvasiveResult",
    "run_ablation",
    "AblationResult",
    "run_response",
    "ResponseResult",
    "run_robustness",
    "RobustnessResult",
    "run_switching",
    "SwitchingResult",
    "run_sensor_quality",
    "SensorQualityResult",
]
