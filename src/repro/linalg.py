"""Numerical linear-algebra helpers shared across the library.

The NUISE filter (paper Algorithm 2) needs a handful of operations that are
not one-liners in NumPy:

* Gaussian likelihoods over possibly *singular* innovation covariances, which
  the paper handles with the matrix pseudo-inverse and pseudo-determinant
  (Algorithm 2 line 20, footnote 3).
* Symmetrization / positive-semidefinite projection to keep covariance
  recursions numerically sane over thousands of iterations.
* Numerical Jacobians used both as a fallback for models without analytic
  derivatives and to cross-check analytic ones in tests.
* Angle wrapping for heading states and angular measurement residuals.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np
from scipy.linalg.lapack import dpotrs

from .errors import DimensionError

__all__ = [
    "symmetrize",
    "symmetrize_stacked",
    "project_psd",
    "pseudo_inverse",
    "pseudo_determinant",
    "pinv_and_pdet",
    "chol_psd",
    "chol_solve",
    "solve_psd",
    "stacked_chol_mask",
    "stacked_solve_psd",
    "stacked_pinv_and_pdet",
    "stacked_project_psd",
    "stacked_gaussian_likelihood_pinv",
    "wrap_residual_stacked",
    "gaussian_likelihood",
    "gaussian_likelihood_chol",
    "gaussian_likelihood_pinv",
    "mahalanobis_squared",
    "numerical_jacobian",
    "wrap_angle",
    "wrap_residual",
    "as_vector",
    "as_matrix",
    "block_diag",
    "is_psd",
]

#: Relative eigenvalue tolerance below which a covariance direction is
#: treated as exactly singular (consumed by the unknown-input estimator).
EIG_TOL = 1e-10

#: Safety margin on top of EIG_TOL for the Cholesky fast paths: a factor
#: whose squared diagonal ratio falls below ``_CHOL_MARGIN * EIG_TOL`` is
#: close enough to the pseudo-inverse's truncation region that we fall back
#: to the eigendecomposition path rather than risk diverging from its
#: rank-deficient semantics.
_CHOL_MARGIN = 1e4


def as_vector(value: Iterable[float] | float, dim: int | None = None, name: str = "vector") -> np.ndarray:
    """Coerce *value* to a 1-D float array, optionally checking its length."""
    arr = np.atleast_1d(np.asarray(value, dtype=float))
    if arr.ndim != 1:
        raise DimensionError(f"{name} must be 1-D, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionError(f"{name} must have length {dim}, got {arr.shape[0]}")
    return arr


def as_matrix(value: Iterable[Iterable[float]], shape: tuple[int, int] | None = None, name: str = "matrix") -> np.ndarray:
    """Coerce *value* to a 2-D float array, optionally checking its shape."""
    arr = np.atleast_2d(np.asarray(value, dtype=float))
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None and arr.shape != shape:
        raise DimensionError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(M + M.T) / 2`` of a square matrix."""
    matrix = np.asarray(matrix, dtype=float)
    return 0.5 * (matrix + matrix.T)


def is_psd(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check whether a symmetric matrix is positive semidefinite.

    The check is performed on the symmetrized matrix and tolerates
    eigenvalues down to ``-tol * max(1, |lambda|_max)``.
    """
    sym = symmetrize(matrix)
    eigvals = np.linalg.eigvalsh(sym)
    if eigvals.size == 0:
        return True
    scale = max(1.0, float(np.max(np.abs(eigvals))))
    return bool(np.min(eigvals) >= -tol * scale)


def project_psd(matrix: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone.

    Negative eigenvalues (numerical noise from covariance recursions) are
    clipped to *floor*. The result is exactly symmetric.

    Fast path: a strictly positive-definite matrix is its own projection, and
    a Cholesky factorization is the cheapest PD certificate — covariances in
    the NUISE recursions are PD almost every iteration, so the eigen-clip
    below only runs on the rare numerically-indefinite stragglers.
    """
    sym = symmetrize(matrix)
    if floor == 0.0 and sym.shape[0]:
        try:
            np.linalg.cholesky(sym)
            return sym
        except np.linalg.LinAlgError:
            pass
    eigvals, eigvecs = np.linalg.eigh(sym)
    clipped = np.clip(eigvals, floor, None)
    return symmetrize(eigvecs @ np.diag(clipped) @ eigvecs.T)


def _eig_decompose(
    matrix: np.ndarray, tol: float, abs_tol: float = 0.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Eigendecompose a symmetric matrix and split spectrum at *tol*.

    Returns ``(eigvals, eigvecs, keep_mask)`` where ``keep_mask`` selects
    eigenvalues considered numerically nonzero. The cutoff is relative to the
    matrix's own spectral radius; *abs_tol* adds an absolute floor for
    callers that know the matrix's natural scale. Without it, a matrix that
    is *exactly* zero up to round-off (e.g. an innovation covariance whose
    every direction was consumed by the unknown-input estimate) keeps its
    round-off eigenvalues (~1e-37) as "nonzero" — inverting pure noise.
    """
    sym = symmetrize(matrix)
    eigvals, eigvecs = np.linalg.eigh(sym)
    scale = float(np.max(np.abs(eigvals))) if eigvals.size else 0.0
    if scale <= 0.0:
        keep = np.zeros_like(eigvals, dtype=bool)
    else:
        keep = np.abs(eigvals) > max(tol * scale, abs_tol)
    return eigvals, eigvecs, keep


def pseudo_inverse(matrix: np.ndarray, tol: float = EIG_TOL) -> np.ndarray:
    """Moore–Penrose pseudo-inverse of a symmetric PSD matrix."""
    eigvals, eigvecs, keep = _eig_decompose(matrix, tol)
    inv_vals = np.zeros_like(eigvals)
    inv_vals[keep] = 1.0 / eigvals[keep]
    return symmetrize(eigvecs @ np.diag(inv_vals) @ eigvecs.T)


def pseudo_determinant(matrix: np.ndarray, tol: float = EIG_TOL) -> tuple[float, int]:
    """Pseudo-determinant and rank of a symmetric PSD matrix.

    The pseudo-determinant is the product of nonzero eigenvalues; the rank is
    the count of nonzero eigenvalues (paper Algorithm 2 footnote 3).
    """
    eigvals, _, keep = _eig_decompose(matrix, tol)
    rank = int(np.count_nonzero(keep))
    if rank == 0:
        return 1.0, 0
    pdet = float(np.prod(eigvals[keep]))
    return pdet, rank


def pinv_and_pdet(
    matrix: np.ndarray, tol: float = EIG_TOL, abs_tol: float = 0.0
) -> tuple[np.ndarray, float, int]:
    """Pseudo-inverse, pseudo-determinant and rank in one decomposition.

    *abs_tol* optionally floors the spectral cutoff in absolute terms (see
    :func:`_eig_decompose`); pass the known noise scale of the matrix so an
    identically-zero matrix is treated as rank 0 instead of as an invertible
    matrix of round-off noise.
    """
    eigvals, eigvecs, keep = _eig_decompose(matrix, tol, abs_tol)
    inv_vals = np.zeros_like(eigvals)
    inv_vals[keep] = 1.0 / eigvals[keep]
    pinv = symmetrize(eigvecs @ np.diag(inv_vals) @ eigvecs.T)
    rank = int(np.count_nonzero(keep))
    pdet = float(np.prod(eigvals[keep])) if rank else 1.0
    return pinv, pdet, rank


def chol_psd(matrix: np.ndarray, tol: float = EIG_TOL):
    """Positive-definiteness certificate for a symmetric matrix, or None.

    Returns an opaque factor accepted by :func:`chol_solve` and
    :func:`gaussian_likelihood_chol`. Returns ``None`` — signalling callers to
    fall back to the pseudo-inverse path — when the matrix is empty, not
    positive definite (Cholesky fails), or conditioned badly enough that the
    pseudo-inverse's spectral truncation (relative *tol*) could engage. The
    conservative fallback is what keeps the rank-deficient ``C2 G`` semantics
    of Algorithm 2 intact: unexcitable input directions still receive the
    minimum-norm estimate instead of an exploding solve.

    Implemented on ``np.linalg.cholesky`` rather than SciPy's
    ``cho_factor``: for the 2x2-8x8 matrices of the filter recursions the
    SciPy wrapper's Python overhead costs more than the factorization.
    """
    sym = symmetrize(matrix)
    n = sym.shape[0]
    if n == 0:
        return None
    try:
        lower = np.linalg.cholesky(sym)
    except np.linalg.LinAlgError:
        return None
    diag = lower.diagonal()
    d_max = diag.max()
    if d_max <= 0.0 or not np.isfinite(d_max):
        return None
    if (diag.min() / d_max) ** 2 <= _CHOL_MARGIN * tol:
        return None
    return sym, lower


def chol_solve(factor, rhs: np.ndarray) -> np.ndarray:
    """Solve ``M x = rhs`` given ``factor = chol_psd(M)`` (1-D or 2-D rhs).

    Solves through the already-computed Cholesky factor (LAPACK ``dpotrs``),
    so the factorization paid for the PD certificate is reused instead of
    running a second (LU) factorization on the matrix.
    """
    _, lower = factor
    solution, info = dpotrs(lower, np.asarray(rhs, dtype=float), lower=1)
    if info != 0:
        sym, _ = factor
        return np.linalg.solve(sym, rhs)
    return solution


def solve_psd(matrix: np.ndarray, rhs: np.ndarray, tol: float = EIG_TOL) -> np.ndarray:
    """``pinv(M) @ rhs`` with a Cholesky fast path for well-conditioned PD M.

    For positive-definite *matrix* the two paths agree to round-off; for
    singular or near-truncation matrices the eigendecomposition-based
    pseudo-inverse (with its spectral cutoff) is used, preserving the
    minimum-norm behaviour the NUISE filter relies on.
    """
    factor = chol_psd(matrix, tol)
    if factor is None:
        return pseudo_inverse(matrix, tol) @ rhs
    return chol_solve(factor, rhs)


def symmetrize_stacked(matrices: np.ndarray) -> np.ndarray:
    """Symmetric part of a stack of square matrices (``(..., n, n)``)."""
    matrices = np.asarray(matrices, dtype=float)
    return 0.5 * (matrices + matrices.swapaxes(-1, -2))


def _chol_recurrence(sym: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Column-by-column batched Cholesky that masks instead of raising.

    The Cholesky–Banachiewicz recurrence, vectorized over the batch axes: a
    nonpositive (or non-finite) pivot marks its cell failed and is replaced
    by 1 so the remaining columns stay finite, instead of aborting the whole
    batch the way LAPACK does. The loop runs over the ``n`` columns only —
    reference stacks are a handful of entries wide — never over the batch.
    Factors of failed cells are garbage and must be gated by ``ok``.
    """
    n = sym.shape[-1]
    lower = np.zeros_like(sym)
    ok = np.ones(sym.shape[:-2], dtype=bool)
    for j in range(n):
        row_j = lower[..., j, :j]
        pivot_sq = sym[..., j, j] - (row_j * row_j).sum(axis=-1)
        good = pivot_sq > 0.0
        ok &= good
        pivot = np.sqrt(np.where(good, pivot_sq, 1.0))
        lower[..., j, j] = pivot
        if j + 1 < n:
            below = sym[..., j + 1 :, j] - (lower[..., j + 1 :, :j] @ row_j[..., None])[
                ..., 0
            ]
            lower[..., j + 1 :, j] = below / pivot[..., None]
    return lower, ok


def stacked_chol_mask(
    matrices: np.ndarray,
    tol: float = EIG_TOL,
    diag_mask: np.ndarray | None = None,
    assume_symmetric: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Cholesky certificate over a stack of symmetric matrices.

    Returns ``(lower, ok)`` where ``lower`` holds the Cholesky factor of each
    cell for which ``ok`` is True. A cell is accepted on exactly the
    :func:`chol_psd` terms: the factorization must succeed and the squared
    diagonal ratio must clear the ``_CHOL_MARGIN * tol`` conditioning margin;
    everything else is left for the caller's per-cell pseudo-inverse fallback.

    ``diag_mask`` (broadcastable to ``(..., n)``) restricts the conditioning
    ratio to the masked diagonal entries: callers that pad heterogeneous
    blocks to a shared size with exact identity rows use it so the padding
    cannot tilt the certificate away from the unpadded decision.
    ``assume_symmetric`` skips the (idempotent) symmetrization for inputs
    that are already exactly symmetric.

    ``np.linalg.cholesky`` raises on the *whole* batch if any one cell is
    indefinite, so a mixed batch re-factors through a vectorized
    Cholesky–Banachiewicz recurrence that poisons failing pivots instead of
    raising — singular cells are a normal operating regime (standstill
    iterations), not an exception, and must not trigger per-cell Python
    loops. ``lower`` is only meaningful where ``ok`` is True.
    """
    sym = matrices if assume_symmetric else symmetrize_stacked(matrices)
    batch = sym.shape[:-2]
    n = sym.shape[-1]
    if n == 0 or sym.size == 0:
        return np.zeros_like(sym), np.zeros(batch, dtype=bool)
    try:
        lower = np.linalg.cholesky(sym)
        ok = np.ones(batch, dtype=bool)
    except np.linalg.LinAlgError:
        lower, ok = _chol_recurrence(sym)
    diag = np.diagonal(lower, axis1=-2, axis2=-1)
    if diag_mask is not None:
        d_max = np.where(diag_mask, diag, -np.inf).max(axis=-1)
        d_min = np.where(diag_mask, diag, np.inf).min(axis=-1)
    else:
        d_max = diag.max(axis=-1)
        d_min = diag.min(axis=-1)
    safe = np.where(d_max > 0.0, d_max, 1.0)
    ratio_sq = (d_min / safe) ** 2
    ok &= np.isfinite(d_max) & (d_max > 0.0) & (ratio_sq > _CHOL_MARGIN * tol)
    return lower, ok


def stacked_solve_psd(
    matrices: np.ndarray,
    rhs: np.ndarray,
    tol: float = EIG_TOL,
    diag_mask: np.ndarray | None = None,
    assume_symmetric: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``pinv(M) @ rhs`` over stacks ``(..., n, n)`` / ``(..., n, k)``.

    Cells that pass the :func:`stacked_chol_mask` certificate are solved with
    one batched ``np.linalg.solve`` call; the rest fall back per cell to the
    :func:`pseudo_inverse` spectral-truncation path, exactly as the serial
    :func:`solve_psd` would. ``diag_mask`` and ``assume_symmetric`` are
    forwarded to the certificate (see :func:`stacked_chol_mask`). Returns
    ``(solution, fallback_mask)`` so callers can surface conditioning
    regressions through telemetry.
    """
    sym = matrices if assume_symmetric else symmetrize_stacked(matrices)
    rhs = np.asarray(rhs, dtype=float)
    batch = sym.shape[:-2]
    n = sym.shape[-1]
    k = rhs.shape[-1]
    _, ok = stacked_chol_mask(sym, tol, diag_mask=diag_mask, assume_symmetric=True)
    if ok.all():
        # Homogeneous well-conditioned batch (the every-iteration case):
        # one gufunc call, no masking copies.
        return np.linalg.solve(sym, rhs), ~ok
    rhs_full = np.broadcast_to(rhs, batch + (n, k))
    out = np.empty(batch + (n, k))
    if ok.any():
        out[ok] = np.linalg.solve(sym[ok], rhs_full[ok])
    bad = ~ok
    for idx in zip(*np.nonzero(bad)):
        out[idx] = pseudo_inverse(sym[idx], tol) @ rhs_full[idx]
    return out, bad


def stacked_pinv_and_pdet(
    matrices: np.ndarray,
    tol: float = EIG_TOL,
    abs_tol: float | np.ndarray = 0.0,
    assume_symmetric: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`pinv_and_pdet` over a stack of symmetric matrices.

    ``abs_tol`` broadcasts over the batch axes so each cell can carry its own
    noise-scale floor. Per cell the result is bit-identical to the serial
    helper: batched ``eigh`` factors each slice with the same algorithm, and
    the masked product over kept eigenvalues multiplies the same values in
    the same order.
    """
    sym = matrices if assume_symmetric else symmetrize_stacked(matrices)
    batch = sym.shape[:-2]
    n = sym.shape[-1]
    if n == 0:
        return (
            np.zeros_like(sym),
            np.ones(batch),
            np.zeros(batch, dtype=int),
        )
    eigvals, eigvecs = np.linalg.eigh(sym)
    abs_vals = np.abs(eigvals)
    scale = abs_vals.max(axis=-1)
    cutoff = np.maximum(tol * scale, np.asarray(abs_tol, dtype=float))
    keep = (abs_vals > cutoff[..., None]) & (scale[..., None] > 0.0)
    inv_vals = np.where(keep, 1.0 / np.where(keep, eigvals, 1.0), 0.0)
    pinv = symmetrize_stacked((eigvecs * inv_vals[..., None, :]) @ eigvecs.swapaxes(-1, -2))
    rank = keep.sum(axis=-1)
    pdet = np.where(keep, eigvals, 1.0).prod(axis=-1)
    pdet = np.where(rank > 0, pdet, 1.0)
    return pinv, pdet, rank


def stacked_project_psd(
    matrices: np.ndarray, assume_symmetric: bool = False
) -> np.ndarray:
    """Batched :func:`project_psd` (floor 0) over a stack of matrices.

    Positive-definite cells are certified by one batched Cholesky and pass
    through unchanged (the serial fast path); numerically-indefinite
    stragglers are eigen-clipped per cell with the serial helper.
    """
    sym = matrices if assume_symmetric else symmetrize_stacked(matrices)
    n = sym.shape[-1]
    if n == 0 or sym.size == 0:
        return sym
    try:
        np.linalg.cholesky(sym)
        return sym
    except np.linalg.LinAlgError:
        pass
    flat = sym.reshape((-1, n, n))
    out = flat.copy()
    for i in range(flat.shape[0]):
        try:
            np.linalg.cholesky(flat[i])
        except np.linalg.LinAlgError:
            out[i] = project_psd(flat[i])
    return out.reshape(sym.shape)


def stacked_gaussian_likelihood_pinv(
    residuals: np.ndarray, pinv: np.ndarray, pdet: np.ndarray, rank: np.ndarray
) -> np.ndarray:
    """Batched :func:`gaussian_likelihood_pinv` (Algorithm 2 line 20).

    ``residuals`` has shape ``(..., m)``; ``pinv``/``pdet``/``rank`` come from
    :func:`stacked_pinv_and_pdet`. Rank-0 cells yield likelihood 1.0 exactly
    as the serial helper does.
    """
    residuals = np.asarray(residuals, dtype=float)
    if residuals.shape[-1] == 0:
        return np.ones(residuals.shape[:-1])
    tmp = (pinv @ residuals[..., None])[..., 0]
    quad = (residuals * tmp).sum(axis=-1)
    norm = (2.0 * np.pi) ** (rank / 2.0) * np.sqrt(np.maximum(pdet, np.finfo(float).tiny))
    with np.errstate(over="ignore", under="ignore"):
        lik = np.exp(-0.5 * quad) / norm
    return np.where(rank == 0, 1.0, lik)


def wrap_residual_stacked(residuals: np.ndarray, angular_mask: np.ndarray) -> np.ndarray:
    """Wrap angular components of stacked residuals ``(..., m)``.

    ``angular_mask`` broadcasts against the residual stack; masked entries
    get the :func:`wrap_angle` treatment (including the ``+pi`` convention at
    the branch cut), the rest pass through untouched.
    """
    residuals = np.asarray(residuals, dtype=float)
    wrapped = np.mod(residuals + np.pi, 2.0 * np.pi) - np.pi
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    return np.where(angular_mask, wrapped, residuals)


def mahalanobis_squared(residual: np.ndarray, covariance: np.ndarray, tol: float = EIG_TOL) -> float:
    """Squared Mahalanobis distance ``r.T @ pinv(S) @ r`` of a residual."""
    residual = as_vector(residual, name="residual")
    pinv = pseudo_inverse(covariance, tol)
    return float(residual @ pinv @ residual)


def gaussian_likelihood(residual: np.ndarray, covariance: np.ndarray, tol: float = EIG_TOL) -> float:
    """Gaussian density of *residual* under ``N(0, covariance)``.

    Implements Algorithm 2 line 20: uses the pseudo-inverse and
    pseudo-determinant so singular innovation covariances (directions consumed
    by the unknown-input estimate) contribute no probability mass.
    """
    residual = as_vector(residual, name="residual")
    factor = chol_psd(covariance, tol)
    if factor is not None:
        return gaussian_likelihood_chol(residual, factor)
    pinv, pdet, rank = pinv_and_pdet(covariance, tol)
    return gaussian_likelihood_pinv(residual, pinv, pdet, rank)


def gaussian_likelihood_pinv(
    residual: np.ndarray, pinv: np.ndarray, pdet: float, rank: int
) -> float:
    """Gaussian density from a precomputed :func:`pinv_and_pdet` result.

    Lets callers that already pseudo-inverted a (possibly singular)
    innovation covariance — e.g. for the filter gain — evaluate Algorithm 2
    line 20 without a second eigendecomposition. Numerically identical to
    :func:`gaussian_likelihood`'s fallback path.
    """
    if rank == 0:
        return 1.0
    residual = np.asarray(residual, dtype=float)
    quad = float(residual @ pinv @ residual)
    norm = (2.0 * np.pi) ** (rank / 2.0) * np.sqrt(max(pdet, np.finfo(float).tiny))
    return float(np.exp(-0.5 * quad) / norm)


def gaussian_likelihood_chol(residual: np.ndarray, factor) -> float:
    """Gaussian density from a precomputed :func:`chol_psd` factorization.

    The fast-path companion to :func:`gaussian_likelihood` for callers that
    already factored the (full-rank) innovation covariance: the quadratic
    form comes from a triangular solve and the determinant from the factor's
    diagonal, with no extra decomposition.
    """
    residual = np.asarray(residual, dtype=float)
    n = residual.shape[0]
    if n == 0:
        return 1.0
    quad = float(residual @ chol_solve(factor, residual))
    diag = factor[1].diagonal()
    det = float(np.prod(diag * diag))
    norm = (2.0 * np.pi) ** (n / 2.0) * np.sqrt(max(det, np.finfo(float).tiny))
    return float(np.exp(-0.5 * quad) / norm)


def numerical_jacobian(
    func: Callable[[np.ndarray], np.ndarray],
    point: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference Jacobian of ``func`` at ``point``.

    ``func`` maps an ``(n,)`` vector to an ``(m,)`` vector; the result has
    shape ``(m, n)``. The step is scaled with the magnitude of each
    coordinate so the derivative is accurate for both tiny and large states.
    """
    point = as_vector(point, name="point")
    base = np.asarray(func(point), dtype=float)
    jac = np.zeros((base.shape[0], point.shape[0]))
    for j in range(point.shape[0]):
        step = epsilon * max(1.0, abs(point[j]))
        plus = point.copy()
        minus = point.copy()
        plus[j] += step
        minus[j] -= step
        jac[:, j] = (np.asarray(func(plus), dtype=float) - np.asarray(func(minus), dtype=float)) / (2.0 * step)
    return jac


def wrap_angle(angle: float | np.ndarray) -> float | np.ndarray:
    """Wrap angle(s) to the interval ``(-pi, pi]``."""
    wrapped = np.mod(np.asarray(angle, dtype=float) + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps exact multiples of 2*pi to -pi; keep +pi convention instead.
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    if np.isscalar(angle) or np.asarray(angle).ndim == 0:
        return float(wrapped)
    return wrapped


def wrap_residual(residual: np.ndarray, angular_mask: Sequence[bool] | np.ndarray | None) -> np.ndarray:
    """Wrap the angular components of a measurement residual.

    ``angular_mask`` flags which components of the residual are angles; those
    are wrapped to ``(-pi, pi]`` so that, e.g., a heading innovation of
    ``2*pi - 0.01`` is treated as ``-0.01`` rather than a huge anomaly.
    """
    residual = as_vector(residual, name="residual").copy()
    if angular_mask is None:
        return residual
    mask = np.asarray(angular_mask, dtype=bool)
    if mask.shape[0] != residual.shape[0]:
        raise DimensionError(
            f"angular mask length {mask.shape[0]} does not match residual length {residual.shape[0]}"
        )
    if mask.any():
        residual[mask] = wrap_angle(residual[mask])
    return residual


def block_diag(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Block-diagonal concatenation of square (or rectangular) matrices."""
    mats = [as_matrix(b, name="block") for b in blocks]
    if not mats:
        return np.zeros((0, 0))
    rows = sum(m.shape[0] for m in mats)
    cols = sum(m.shape[1] for m in mats)
    out = np.zeros((rows, cols))
    r = c = 0
    for m in mats:
        out[r : r + m.shape[0], c : c + m.shape[1]] = m
        r += m.shape[0]
        c += m.shape[1]
    return out
