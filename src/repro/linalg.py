"""Numerical linear-algebra helpers shared across the library.

The NUISE filter (paper Algorithm 2) needs a handful of operations that are
not one-liners in NumPy:

* Gaussian likelihoods over possibly *singular* innovation covariances, which
  the paper handles with the matrix pseudo-inverse and pseudo-determinant
  (Algorithm 2 line 20, footnote 3).
* Symmetrization / positive-semidefinite projection to keep covariance
  recursions numerically sane over thousands of iterations.
* Numerical Jacobians used both as a fallback for models without analytic
  derivatives and to cross-check analytic ones in tests.
* Angle wrapping for heading states and angular measurement residuals.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .errors import DimensionError

__all__ = [
    "symmetrize",
    "project_psd",
    "pseudo_inverse",
    "pseudo_determinant",
    "pinv_and_pdet",
    "gaussian_likelihood",
    "mahalanobis_squared",
    "numerical_jacobian",
    "wrap_angle",
    "wrap_residual",
    "as_vector",
    "as_matrix",
    "block_diag",
    "is_psd",
]

#: Relative eigenvalue tolerance below which a covariance direction is
#: treated as exactly singular (consumed by the unknown-input estimator).
EIG_TOL = 1e-10


def as_vector(value: Iterable[float] | float, dim: int | None = None, name: str = "vector") -> np.ndarray:
    """Coerce *value* to a 1-D float array, optionally checking its length."""
    arr = np.atleast_1d(np.asarray(value, dtype=float))
    if arr.ndim != 1:
        raise DimensionError(f"{name} must be 1-D, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionError(f"{name} must have length {dim}, got {arr.shape[0]}")
    return arr


def as_matrix(value: Iterable[Iterable[float]], shape: tuple[int, int] | None = None, name: str = "matrix") -> np.ndarray:
    """Coerce *value* to a 2-D float array, optionally checking its shape."""
    arr = np.atleast_2d(np.asarray(value, dtype=float))
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None and arr.shape != shape:
        raise DimensionError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(M + M.T) / 2`` of a square matrix."""
    matrix = np.asarray(matrix, dtype=float)
    return 0.5 * (matrix + matrix.T)


def is_psd(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check whether a symmetric matrix is positive semidefinite.

    The check is performed on the symmetrized matrix and tolerates
    eigenvalues down to ``-tol * max(1, |lambda|_max)``.
    """
    sym = symmetrize(matrix)
    eigvals = np.linalg.eigvalsh(sym)
    if eigvals.size == 0:
        return True
    scale = max(1.0, float(np.max(np.abs(eigvals))))
    return bool(np.min(eigvals) >= -tol * scale)


def project_psd(matrix: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone.

    Negative eigenvalues (numerical noise from covariance recursions) are
    clipped to *floor*. The result is exactly symmetric.
    """
    sym = symmetrize(matrix)
    eigvals, eigvecs = np.linalg.eigh(sym)
    clipped = np.clip(eigvals, floor, None)
    return symmetrize(eigvecs @ np.diag(clipped) @ eigvecs.T)


def _eig_decompose(matrix: np.ndarray, tol: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Eigendecompose a symmetric matrix and split spectrum at *tol*.

    Returns ``(eigvals, eigvecs, keep_mask)`` where ``keep_mask`` selects
    eigenvalues considered numerically nonzero.
    """
    sym = symmetrize(matrix)
    eigvals, eigvecs = np.linalg.eigh(sym)
    scale = float(np.max(np.abs(eigvals))) if eigvals.size else 0.0
    if scale <= 0.0:
        keep = np.zeros_like(eigvals, dtype=bool)
    else:
        keep = np.abs(eigvals) > tol * scale
    return eigvals, eigvecs, keep


def pseudo_inverse(matrix: np.ndarray, tol: float = EIG_TOL) -> np.ndarray:
    """Moore–Penrose pseudo-inverse of a symmetric PSD matrix."""
    eigvals, eigvecs, keep = _eig_decompose(matrix, tol)
    inv_vals = np.zeros_like(eigvals)
    inv_vals[keep] = 1.0 / eigvals[keep]
    return symmetrize(eigvecs @ np.diag(inv_vals) @ eigvecs.T)


def pseudo_determinant(matrix: np.ndarray, tol: float = EIG_TOL) -> tuple[float, int]:
    """Pseudo-determinant and rank of a symmetric PSD matrix.

    The pseudo-determinant is the product of nonzero eigenvalues; the rank is
    the count of nonzero eigenvalues (paper Algorithm 2 footnote 3).
    """
    eigvals, _, keep = _eig_decompose(matrix, tol)
    rank = int(np.count_nonzero(keep))
    if rank == 0:
        return 1.0, 0
    pdet = float(np.prod(eigvals[keep]))
    return pdet, rank


def pinv_and_pdet(matrix: np.ndarray, tol: float = EIG_TOL) -> tuple[np.ndarray, float, int]:
    """Pseudo-inverse, pseudo-determinant and rank in one decomposition."""
    eigvals, eigvecs, keep = _eig_decompose(matrix, tol)
    inv_vals = np.zeros_like(eigvals)
    inv_vals[keep] = 1.0 / eigvals[keep]
    pinv = symmetrize(eigvecs @ np.diag(inv_vals) @ eigvecs.T)
    rank = int(np.count_nonzero(keep))
    pdet = float(np.prod(eigvals[keep])) if rank else 1.0
    return pinv, pdet, rank


def mahalanobis_squared(residual: np.ndarray, covariance: np.ndarray, tol: float = EIG_TOL) -> float:
    """Squared Mahalanobis distance ``r.T @ pinv(S) @ r`` of a residual."""
    residual = as_vector(residual, name="residual")
    pinv = pseudo_inverse(covariance, tol)
    return float(residual @ pinv @ residual)


def gaussian_likelihood(residual: np.ndarray, covariance: np.ndarray, tol: float = EIG_TOL) -> float:
    """Gaussian density of *residual* under ``N(0, covariance)``.

    Implements Algorithm 2 line 20: uses the pseudo-inverse and
    pseudo-determinant so singular innovation covariances (directions consumed
    by the unknown-input estimate) contribute no probability mass.
    """
    residual = as_vector(residual, name="residual")
    pinv, pdet, rank = pinv_and_pdet(covariance, tol)
    if rank == 0:
        return 1.0
    quad = float(residual @ pinv @ residual)
    norm = (2.0 * np.pi) ** (rank / 2.0) * np.sqrt(max(pdet, np.finfo(float).tiny))
    return float(np.exp(-0.5 * quad) / norm)


def numerical_jacobian(
    func: Callable[[np.ndarray], np.ndarray],
    point: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference Jacobian of ``func`` at ``point``.

    ``func`` maps an ``(n,)`` vector to an ``(m,)`` vector; the result has
    shape ``(m, n)``. The step is scaled with the magnitude of each
    coordinate so the derivative is accurate for both tiny and large states.
    """
    point = as_vector(point, name="point")
    base = np.asarray(func(point), dtype=float)
    jac = np.zeros((base.shape[0], point.shape[0]))
    for j in range(point.shape[0]):
        step = epsilon * max(1.0, abs(point[j]))
        plus = point.copy()
        minus = point.copy()
        plus[j] += step
        minus[j] -= step
        jac[:, j] = (np.asarray(func(plus), dtype=float) - np.asarray(func(minus), dtype=float)) / (2.0 * step)
    return jac


def wrap_angle(angle: float | np.ndarray) -> float | np.ndarray:
    """Wrap angle(s) to the interval ``(-pi, pi]``."""
    wrapped = np.mod(np.asarray(angle, dtype=float) + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps exact multiples of 2*pi to -pi; keep +pi convention instead.
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    if np.isscalar(angle) or np.asarray(angle).ndim == 0:
        return float(wrapped)
    return wrapped


def wrap_residual(residual: np.ndarray, angular_mask: Sequence[bool] | np.ndarray | None) -> np.ndarray:
    """Wrap the angular components of a measurement residual.

    ``angular_mask`` flags which components of the residual are angles; those
    are wrapped to ``(-pi, pi]`` so that, e.g., a heading innovation of
    ``2*pi - 0.01`` is treated as ``-0.01`` rather than a huge anomaly.
    """
    residual = as_vector(residual, name="residual").copy()
    if angular_mask is None:
        return residual
    mask = np.asarray(angular_mask, dtype=bool)
    if mask.shape[0] != residual.shape[0]:
        raise DimensionError(
            f"angular mask length {mask.shape[0]} does not match residual length {residual.shape[0]}"
        )
    if mask.any():
        residual[mask] = wrap_angle(residual[mask])
    return residual


def block_diag(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Block-diagonal concatenation of square (or rectangular) matrices."""
    mats = [as_matrix(b, name="block") for b in blocks]
    if not mats:
        return np.zeros((0, 0))
    rows = sum(m.shape[0] for m in mats)
    cols = sum(m.shape[1] for m in mats)
    out = np.zeros((rows, cols))
    r = c = 0
    for m in mats:
        out[r : r + m.shape[0], c : c + m.shape[1]] = m
        r += m.shape[0]
        c += m.shape[1]
    return out
