"""Attack descriptor: target, channel, activation window and signal."""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .signals import Signal

__all__ = ["AttackChannel", "AttackTarget", "Attack"]


class AttackChannel(enum.Enum):
    """Where in the workflow the corruption originates (paper Fig 2).

    * ``PHYSICAL`` — at the transducer / physical environment (spoofed GPS
      signal, ultrasonic jamming, cut wire, physically blocked laser,
      jammed wheel).
    * ``CYBER`` — inside the workflow software (logic bombs, packet
      injection, buffer-overflow bugs).

    For a staged workflow simulation the channel picks the injection stage;
    the detector, by design, never sees the difference — both reduce to data
    corruption (Section II-B).
    """

    PHYSICAL = "physical"
    CYBER = "cyber"


class AttackTarget(enum.Enum):
    """Which workflow type the attack corrupts."""

    SENSOR = "sensor"
    ACTUATOR = "actuator"


class Attack:
    """A single misbehavior: one corrupted workflow over one time window.

    Parameters
    ----------
    name:
        Human-readable identifier (shows up in reports).
    target:
        ``AttackTarget.SENSOR`` or ``AttackTarget.ACTUATOR``.
    workflow:
        Name of the targeted sensing workflow (a sensor name from the
        robot's suite) or actuation workflow.
    channel:
        Cyber or physical origin.
    signal:
        The corruption applied to the targeted components.
    start:
        Trigger time in seconds.
    stop:
        Optional end time (``None`` = active until mission end). Table II
        scenario #10 uses a finite window ("LiDAR readings back to normal").
    components:
        Indices *within the workflow's vector* the signal corrupts; ``None``
        corrupts the whole vector.
    """

    def __init__(
        self,
        name: str,
        target: AttackTarget,
        workflow: str,
        channel: AttackChannel,
        signal: Signal,
        start: float,
        stop: float | None = None,
        components: Sequence[int] | None = None,
    ) -> None:
        if start < 0.0:
            raise ConfigurationError("attack start time must be nonnegative")
        if stop is not None and stop <= start:
            raise ConfigurationError("attack stop time must exceed start time")
        self.name = str(name)
        self.target = target
        self.workflow = str(workflow)
        self.channel = channel
        self.signal = signal
        self.start = float(start)
        self.stop = None if stop is None else float(stop)
        self.components = None if components is None else tuple(int(i) for i in components)

    def active(self, t: float) -> bool:
        """Whether the attack corrupts data at mission time *t*."""
        if t < self.start:
            return False
        return self.stop is None or t < self.stop

    def apply(self, clean: np.ndarray, t: float, rng: np.random.Generator) -> np.ndarray:
        """Corrupt *clean* at time *t* (no-op outside the active window)."""
        if not self.active(t):
            return np.asarray(clean, dtype=float).copy()
        clean = np.asarray(clean, dtype=float).copy()
        elapsed = t - self.start
        if self.components is None:
            return np.asarray(self.signal.apply(clean, elapsed, rng), dtype=float)
        idx = list(self.components)
        clean[idx] = self.signal.apply(clean[idx], elapsed, rng)
        return clean

    def reset(self) -> None:
        """Reset the signal's per-run state before a fresh simulation."""
        self.signal.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        window = f"[{self.start}, {'inf' if self.stop is None else self.stop})"
        return (
            f"Attack({self.name!r}, {self.target.value}:{self.workflow}, "
            f"{self.channel.value}, t={window})"
        )
