"""Scenario catalog: the paper's Table II attack/failure suite.

Each :class:`Scenario` matches one row of Table II (for the Khepera) or the
adapted Tamiya suite of Section V-D. Scenarios are *factories*: calling
:meth:`Scenario.build_schedule` constructs fresh :class:`Attack` objects (and
therefore fresh stateful signals) for every simulation run.

Magnitudes follow the paper:

* Wheel logic bomb: -6000 / +6000 firmware speed units on the left/right
  wheel (0.04 m/s with the Section V-H unit calibration).
* IPS logic bomb / spoofing: +0.07 m / -0.1 m shifts on the X axis.
* Wheel-encoder logic bomb: +100 steps injected into the left encoder.
* LiDAR DoS: every distance reading drops to 0 m.
* LiDAR blocking: the reading toward the west ("left") wall is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..actuators.differential import SPEED_UNIT_M_PER_S
from .base import Attack, AttackChannel
from .actuator_attacks import actuator_offset, wheel_jamming
from .scheduler import AttackSchedule
from .sensor_attacks import sensor_bias, sensor_dos
from .signals import OdometryTickInjection
from .base import AttackTarget

__all__ = ["Scenario", "khepera_scenarios", "tamiya_scenarios", "extended_khepera_scenarios", "ENCODER_TICK_M"]

#: Effective odometry arc length of one injected encoder step (metres).
ENCODER_TICK_M = 1.0e-4

#: Khepera wheel base used for the tick-injection pose effect (metres);
#: must match :class:`repro.robots.khepera` geometry.
KHEPERA_WHEEL_BASE = 0.0888


@dataclass(frozen=True)
class Scenario:
    """One attack/failure scenario (a Table II row).

    Attributes
    ----------
    number:
        Row number in Table II (Khepera) or the Tamiya suite.
    name, description, detail:
        Table II's scenario/description/detail columns.
    build_attacks:
        Zero-argument factory returning fresh :class:`Attack` objects.
    duration:
        Mission length in seconds the scenario is evaluated over.
    """

    number: int
    name: str
    description: str
    detail: str
    build_attacks: Callable[[], list[Attack]]
    duration: float = 20.0

    def build_schedule(self) -> AttackSchedule:
        """Fresh attack schedule for one simulation run."""
        return AttackSchedule(self.build_attacks())

    @property
    def channels(self) -> tuple[str, ...]:
        """Channels exercised (derived from a throwaway attack build)."""
        return tuple(sorted({a.channel.value for a in self.build_attacks()}))

    @property
    def targets(self) -> tuple[str, ...]:
        return tuple(sorted({a.target.value for a in self.build_attacks()}))


def _khepera_wheel_bomb(start: float = 4.0) -> Attack:
    magnitude = 6000.0 * SPEED_UNIT_M_PER_S
    return actuator_offset(
        "wheels",
        offset=(-magnitude, magnitude),
        start=start,
        channel=AttackChannel.CYBER,
        name="wheel-controller-logic-bomb",
    )


def _khepera_ips_bias(shift_x: float, start: float, channel: AttackChannel) -> Attack:
    return sensor_bias(
        "ips",
        offset=(shift_x,),
        start=start,
        components=(0,),
        channel=channel,
        name=f"ips-shift-{shift_x:+.2f}m",
    )


def _khepera_we_ticks(start: float = 4.0) -> Attack:
    return Attack(
        name="wheel-encoder-logic-bomb",
        target=AttackTarget.SENSOR,
        workflow="wheel_encoder",
        channel=AttackChannel.CYBER,
        signal=OdometryTickInjection(
            ticks=100.0,
            tick_length=ENCODER_TICK_M,
            wheel_base=KHEPERA_WHEEL_BASE,
            wheel="left",
        ),
        start=start,
    )


def _khepera_lidar_block(start: float = 4.0) -> Attack:
    # Blocking the laser toward the west ("left") wall: that feature reads a
    # spurious nearer reflection.
    return sensor_bias(
        "lidar",
        offset=(-0.25,),
        start=start,
        components=(0,),
        channel=AttackChannel.PHYSICAL,
        name="lidar-west-blocking",
    )


def khepera_scenarios() -> list[Scenario]:
    """The eleven Table II scenarios for the Khepera prototype."""
    return [
        Scenario(
            1,
            "Wheel controller logic bomb",
            "logic bomb in actuator utility lib that alters planned control commands (actuator/cyber)",
            "-6000 speed units on vL, +6000 speed units on vR",
            lambda: [_khepera_wheel_bomb(4.0)],
        ),
        Scenario(
            2,
            "Wheel jamming",
            "left wheel is physically jammed (actuator/physical)",
            "0 speed unit on vL",
            lambda: [wheel_jamming("wheels", wheel_component=0, start=4.0)],
        ),
        Scenario(
            3,
            "IPS logic bomb",
            "logic bomb in IPS data processing lib that alters positioning data (sensor/cyber)",
            "shift +0.07m on X axis",
            lambda: [_khepera_ips_bias(+0.07, 4.0, AttackChannel.CYBER)],
        ),
        Scenario(
            4,
            "IPS spoofing",
            "fake IPS signal overpowers authentic source and sends fake data (sensor/physical)",
            "shift -0.1m on X axis",
            lambda: [_khepera_ips_bias(-0.10, 4.0, AttackChannel.PHYSICAL)],
        ),
        Scenario(
            5,
            "Wheel encoder logic bomb",
            "logic bomb in wheel encoder data processing lib that alters readings (sensor/cyber)",
            "increment 100 steps on left wheel encoder",
            lambda: [_khepera_we_ticks(4.0)],
        ),
        Scenario(
            6,
            "LiDAR DoS",
            "cutting off the LiDAR sensor wire connection (sensor/physical)",
            "received distance reading is 0m reading in each direction",
            lambda: [sensor_dos("lidar", start=0.0, name="lidar-dos")],
        ),
        Scenario(
            7,
            "LiDAR sensor blocking",
            "blocking laser ejection and reception of LiDAR (sensor/physical)",
            "received distance reading to the left wall is incorrect",
            lambda: [_khepera_lidar_block(4.0)],
        ),
        Scenario(
            8,
            "Wheel controller & IPS logic bomb",
            "altering both wheel control commands and IPS readings (sensor&actuator/cyber)",
            "-/+6000 units on vL, vR; shift +0.07m on X axis",
            lambda: [
                _khepera_ips_bias(+0.07, 4.0, AttackChannel.CYBER),
                _khepera_wheel_bomb(10.0),
            ],
        ),
        Scenario(
            9,
            "LiDAR DoS & wheel encoder logic bomb",
            "blocking LiDAR readings and altering wheel encoder readings (sensor/cyber&physical)",
            "increment 100 steps on left wheel; 0m in each direction from LiDAR",
            lambda: [
                _khepera_we_ticks(4.0),
                sensor_dos("lidar", start=8.0, name="lidar-dos"),
            ],
        ),
        Scenario(
            10,
            "IPS spoofing & LiDAR DoS",
            "altering IPS readings and blocking LiDAR readings (sensor/physical)",
            "0m in each direction from LiDAR; shift +0.07m on X; LiDAR readings back to normal",
            lambda: [
                sensor_dos("lidar", start=3.0, stop=9.0, name="lidar-dos-window"),
                _khepera_ips_bias(+0.07, 6.0, AttackChannel.PHYSICAL),
            ],
        ),
        Scenario(
            11,
            "IPS & wheel encoder logic bomb",
            "altering both IPS and wheel encoder readings (sensor/cyber)",
            "increment 100 steps on left wheel; shift +0.1m on X axis",
            lambda: [
                _khepera_we_ticks(4.0),
                _khepera_ips_bias(+0.10, 8.0, AttackChannel.CYBER),
            ],
        ),
    ]


def tamiya_scenarios() -> list[Scenario]:
    """Adapted scenario suite for the Tamiya RC car (Section V-D).

    The paper states it launched "similar attacks and failures" on the
    Tamiya's sensors (LiDAR, IPS, IMU) and actuators (throttle, steering);
    this suite mirrors the Khepera catalog on the car's hardware.
    """
    return [
        Scenario(
            1,
            "Throttle logic bomb",
            "logic bomb in ESC utility lib adds forward speed (actuator/cyber)",
            "+0.3 m/s on commanded speed",
            lambda: [
                actuator_offset(
                    "drivetrain", offset=(0.3,), start=4.0, components=(0,), name="throttle-bomb"
                )
            ],
        ),
        Scenario(
            2,
            "Steering takeover",
            "injected steering command packets bias the servo (actuator/cyber)",
            "+0.35 rad on steering angle",
            lambda: [
                actuator_offset(
                    "drivetrain", offset=(0.35,), start=4.0, components=(1,), name="steer-takeover"
                )
            ],
            duration=12.0,
        ),
        Scenario(
            3,
            "IPS logic bomb",
            "logic bomb in IPS data processing lib (sensor/cyber)",
            "shift +0.07m on X axis",
            lambda: [_khepera_ips_bias(+0.07, 4.0, AttackChannel.CYBER)],
        ),
        Scenario(
            4,
            "IPS spoofing",
            "fake IPS signal overpowers authentic source (sensor/physical)",
            "shift -0.1m on X axis",
            lambda: [_khepera_ips_bias(-0.10, 4.0, AttackChannel.PHYSICAL)],
        ),
        Scenario(
            5,
            "IMU drift bomb",
            "logic bomb in the inertial-navigation integrator (sensor/cyber)",
            "shift +0.08m on X, +0.1 rad on heading",
            lambda: [
                sensor_bias(
                    "imu",
                    offset=(0.08, 0.0, 0.10),
                    start=4.0,
                    channel=AttackChannel.CYBER,
                    name="imu-drift-bomb",
                )
            ],
        ),
        Scenario(
            6,
            "LiDAR DoS",
            "cutting off the LiDAR sensor wire connection (sensor/physical)",
            "received distance reading is 0m in each direction",
            lambda: [sensor_dos("lidar", start=0.0, name="lidar-dos")],
        ),
        Scenario(
            7,
            "LiDAR sensor blocking",
            "blocking laser ejection and reception of LiDAR (sensor/physical)",
            "received distance reading to the west wall is incorrect",
            lambda: [_khepera_lidar_block(4.0)],
        ),
        Scenario(
            8,
            "Throttle bomb & IPS logic bomb",
            "altering both speed commands and IPS readings (sensor&actuator/cyber)",
            "+0.3 m/s on speed (t=7s); shift +0.07m on X axis (t=4s)",
            lambda: [
                _khepera_ips_bias(+0.07, 4.0, AttackChannel.CYBER),
                actuator_offset(
                    "drivetrain", offset=(0.3,), start=7.0, components=(0,), name="throttle-bomb"
                ),
            ],
        ),
    ]


def extended_khepera_scenarios() -> list[Scenario]:
    """Further misbehavior classes from Table I, beyond the Table II rows.

    These exercise the remaining signal primitives end-to-end: replayed
    sensor traffic, resonant-noise jamming, a tire blowout (multiplicative
    actuator fault) and an unintended-acceleration ramp (the Toyota-style
    defect of Table I).
    """
    from .sensor_attacks import sensor_noise_jamming, sensor_replay
    from .actuator_attacks import actuator_runaway, tire_blowout

    return [
        Scenario(
            101,
            "IPS replay",
            "recorded IPS packets are replayed with a delay (sensor/cyber)",
            "readings lag by 40 iterations (2 s)",
            lambda: [sensor_replay("ips", delay_steps=40, start=4.0)],
        ),
        Scenario(
            102,
            "LiDAR noise jamming",
            "resonant interference swamps the LiDAR returns (sensor/physical)",
            "additive noise sigma 0.15 m on each wall distance",
            lambda: [
                sensor_noise_jamming("lidar", sigma=(0.15, 0.15, 0.15, 0.0), start=4.0)
            ],
        ),
        Scenario(
            103,
            "Tire blowout",
            "blown left tire drags the wheel (actuator/physical)",
            "left wheel executes at 40% of command",
            lambda: [tire_blowout("wheels", wheel_component=0, drag_factor=0.4, start=4.0)],
        ),
        Scenario(
            104,
            "Unintended acceleration",
            "stack-overflow defect ramps both wheels (actuator/cyber)",
            "commands drift upward at 0.05 m/s per second",
            lambda: [actuator_runaway("wheels", rate=(0.05, 0.05), start=4.0)],
        ),
    ]
