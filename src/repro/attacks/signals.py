"""Corruption signal primitives.

A :class:`Signal` maps the *clean* value of a reading/command (or a subset of
its components) to its corrupted value at a given time since the attack
triggered. Signals are stateful where the physical effect is stateful
(stuck-at holds the first captured value; replay buffers past traffic), so a
fresh signal instance must be used per simulation run — the
:class:`~repro.attacks.catalog.Scenario` factories take care of that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..linalg import as_vector

__all__ = [
    "Signal",
    "BiasSignal",
    "RampSignal",
    "NoiseSignal",
    "ZeroSignal",
    "StuckSignal",
    "ScaleSignal",
    "OverrideSignal",
    "ReplaySignal",
    "OdometryTickInjection",
]


class Signal(ABC):
    """Transforms clean component values into corrupted ones."""

    @abstractmethod
    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        """Corrupted value given the clean value and seconds since trigger."""

    def reset(self) -> None:
        """Clear any per-run state (default: stateless, nothing to do)."""


class BiasSignal(Signal):
    """Constant additive offset — logic bombs, spoofed constant shifts."""

    def __init__(self, offset: Sequence[float] | float) -> None:
        self._offset = np.atleast_1d(np.asarray(offset, dtype=float))

    @property
    def offset(self) -> np.ndarray:
        return self._offset.copy()

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        return clean + self._offset


class RampSignal(Signal):
    """Linearly growing offset — slow-drift GPS spoofing."""

    def __init__(self, rate: Sequence[float] | float, max_offset: float | None = None) -> None:
        self._rate = np.atleast_1d(np.asarray(rate, dtype=float))
        self._max = max_offset
        if max_offset is not None and max_offset < 0:
            raise ConfigurationError("max_offset must be nonnegative")

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        offset = self._rate * max(0.0, elapsed)
        if self._max is not None:
            offset = np.clip(offset, -self._max, self._max)
        return clean + offset


class NoiseSignal(Signal):
    """Additive white noise — resonant ultrasonic jamming, RF interference."""

    def __init__(self, sigma: Sequence[float] | float) -> None:
        self._sigma = np.atleast_1d(np.asarray(sigma, dtype=float))
        if np.any(self._sigma < 0):
            raise ConfigurationError("noise sigma must be nonnegative")

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        return clean + self._sigma * rng.standard_normal(clean.shape)


class ZeroSignal(Signal):
    """Force the value to zero — DoS / cut wire (Table II #6)."""

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        return np.zeros_like(clean)


class OverrideSignal(Signal):
    """Replace the value with a fixed vector — packet injection."""

    def __init__(self, value: Sequence[float] | float) -> None:
        self._value = np.atleast_1d(np.asarray(value, dtype=float))

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        if self._value.shape == (1,) and clean.shape != (1,):
            return np.full_like(clean, self._value[0])
        return self._value.copy()


class StuckSignal(Signal):
    """Hold the first value seen after trigger — frozen transducer/servo."""

    def __init__(self) -> None:
        self._held: np.ndarray | None = None

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        if self._held is None:
            self._held = np.array(clean, dtype=float, copy=True)
        return self._held.copy()

    def reset(self) -> None:
        self._held = None


class ScaleSignal(Signal):
    """Multiplicative corruption — tire blowout (friction drags one wheel)."""

    def __init__(self, factors: Sequence[float] | float) -> None:
        self._factors = np.atleast_1d(np.asarray(factors, dtype=float))

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        return clean * self._factors


class ReplaySignal(Signal):
    """Replay values captured *delay_steps* iterations earlier.

    Until enough history accumulates the first captured value is replayed,
    matching a record-and-replay attacker who loops their first capture.
    """

    def __init__(self, delay_steps: int) -> None:
        if delay_steps < 1:
            raise ConfigurationError("delay_steps must be at least 1")
        self._delay = int(delay_steps)
        self._buffer: deque[np.ndarray] = deque()

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        self._buffer.append(np.array(clean, dtype=float, copy=True))
        if len(self._buffer) > self._delay:
            return self._buffer.popleft()
        return self._buffer[0].copy()

    def reset(self) -> None:
        self._buffer.clear()


class OdometryTickInjection(Signal):
    """Encoder-tick injection into a dead-reckoned pose output (Table II #5).

    Injecting *ticks* extra steps on one wheel makes the odometry utility
    process believe that wheel travelled ``ticks * tick_length`` further.
    Dead-reckoning converts that into a persistent pose corruption: the pose
    advances by half the phantom arc along the *reported* heading, and the
    heading rotates by ``-arc / wheel_base`` (left wheel) or ``+arc /
    wheel_base`` (right wheel).

    The signal expects the clean components to be the full ``(x, y, theta)``
    odometry pose.
    """

    def __init__(self, ticks: float, tick_length: float, wheel_base: float, wheel: str = "left") -> None:
        if tick_length <= 0 or wheel_base <= 0:
            raise ConfigurationError("tick_length and wheel_base must be positive")
        if wheel not in ("left", "right"):
            raise ConfigurationError("wheel must be 'left' or 'right'")
        self._arc = float(ticks) * float(tick_length)
        self._wheel_base = float(wheel_base)
        self._sign = -1.0 if wheel == "left" else 1.0

    @property
    def pose_offset_magnitude(self) -> tuple[float, float]:
        """(translation, heading) magnitudes of the injected corruption."""
        return abs(self._arc) / 2.0, abs(self._arc) / self._wheel_base

    def apply(self, clean: np.ndarray, elapsed: float, rng: np.random.Generator) -> np.ndarray:
        clean = as_vector(clean, 3, "odometry pose")
        theta = clean[2]
        forward = self._arc / 2.0
        dtheta = self._sign * self._arc / self._wheel_base
        return clean + np.array([forward * np.cos(theta), forward * np.sin(theta), dtheta])
