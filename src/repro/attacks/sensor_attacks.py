"""Convenience constructors for common sensor misbehaviors (Table I)."""

from __future__ import annotations

from typing import Sequence

from .base import Attack, AttackChannel, AttackTarget
from .signals import BiasSignal, NoiseSignal, RampSignal, ReplaySignal, ZeroSignal

__all__ = [
    "sensor_bias",
    "sensor_spoof_ramp",
    "sensor_dos",
    "sensor_noise_jamming",
    "sensor_replay",
]


def sensor_bias(
    sensor: str,
    offset: Sequence[float] | float,
    start: float,
    stop: float | None = None,
    components: Sequence[int] | None = None,
    channel: AttackChannel = AttackChannel.CYBER,
    name: str | None = None,
) -> Attack:
    """Constant shift of sensor readings (logic bomb / constant spoofing)."""
    return Attack(
        name=name or f"{sensor}-bias",
        target=AttackTarget.SENSOR,
        workflow=sensor,
        channel=channel,
        signal=BiasSignal(offset),
        start=start,
        stop=stop,
        components=components,
    )


def sensor_spoof_ramp(
    sensor: str,
    rate: Sequence[float] | float,
    start: float,
    stop: float | None = None,
    max_offset: float | None = None,
    components: Sequence[int] | None = None,
    name: str | None = None,
) -> Attack:
    """Slowly drifting spoofing (GPS-spoofer style, physical channel)."""
    return Attack(
        name=name or f"{sensor}-spoof-ramp",
        target=AttackTarget.SENSOR,
        workflow=sensor,
        channel=AttackChannel.PHYSICAL,
        signal=RampSignal(rate, max_offset),
        start=start,
        stop=stop,
        components=components,
    )


def sensor_dos(
    sensor: str,
    start: float,
    stop: float | None = None,
    components: Sequence[int] | None = None,
    channel: AttackChannel = AttackChannel.PHYSICAL,
    name: str | None = None,
) -> Attack:
    """Denial of service: readings drop to zero (cut wire, Table II #6)."""
    return Attack(
        name=name or f"{sensor}-dos",
        target=AttackTarget.SENSOR,
        workflow=sensor,
        channel=channel,
        signal=ZeroSignal(),
        start=start,
        stop=stop,
        components=components,
    )


def sensor_noise_jamming(
    sensor: str,
    sigma: Sequence[float] | float,
    start: float,
    stop: float | None = None,
    components: Sequence[int] | None = None,
    name: str | None = None,
) -> Attack:
    """Resonant/RF jamming: readings swamped with extra noise."""
    return Attack(
        name=name or f"{sensor}-jamming",
        target=AttackTarget.SENSOR,
        workflow=sensor,
        channel=AttackChannel.PHYSICAL,
        signal=NoiseSignal(sigma),
        start=start,
        stop=stop,
        components=components,
    )


def sensor_replay(
    sensor: str,
    delay_steps: int,
    start: float,
    stop: float | None = None,
    components: Sequence[int] | None = None,
    name: str | None = None,
) -> Attack:
    """Replay stale readings captured *delay_steps* iterations earlier."""
    return Attack(
        name=name or f"{sensor}-replay",
        target=AttackTarget.SENSOR,
        workflow=sensor,
        channel=AttackChannel.CYBER,
        signal=ReplaySignal(delay_steps),
        start=start,
        stop=stop,
        components=components,
    )
