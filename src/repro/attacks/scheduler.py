"""Attack schedule: the set of misbehaviors active during one mission run."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .base import Attack, AttackTarget

__all__ = ["AttackSchedule"]


class AttackSchedule:
    """Applies a collection of attacks to workflow data streams.

    Also serves as the evaluation ground truth: at any time ``t`` it reports
    which sensing workflows and whether the actuation workflow are under
    active misbehavior (the paper's S/A mode ground truth).
    """

    def __init__(self, attacks: Sequence[Attack] = ()) -> None:
        self._attacks = list(attacks)

    @property
    def attacks(self) -> list[Attack]:
        return list(self._attacks)

    def add(self, attack: Attack) -> None:
        self._attacks.append(attack)

    def reset(self) -> None:
        """Reset stateful signals before a fresh simulation run."""
        for attack in self._attacks:
            attack.reset()

    # ------------------------------------------------------------------
    # Data-plane application
    # ------------------------------------------------------------------
    def _matching(self, target: AttackTarget, workflow: str, t: float) -> list[Attack]:
        return [
            a
            for a in self._attacks
            if a.target is target and a.workflow == workflow and a.active(t)
        ]

    def corrupt_sensor(
        self, sensor: str, clean: np.ndarray, t: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply every active attack on *sensor* to its clean reading."""
        value = np.asarray(clean, dtype=float).copy()
        for attack in self._matching(AttackTarget.SENSOR, sensor, t):
            value = attack.apply(value, t, rng)
        return value

    def corrupt_actuator(
        self, actuator: str, clean: np.ndarray, t: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply every active attack on *actuator* to the planned command."""
        value = np.asarray(clean, dtype=float).copy()
        for attack in self._matching(AttackTarget.ACTUATOR, actuator, t):
            value = attack.apply(value, t, rng)
        return value

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def corrupted_sensors(self, t: float) -> frozenset[str]:
        """Names of sensing workflows under active misbehavior at time *t*."""
        return frozenset(
            a.workflow for a in self._attacks if a.target is AttackTarget.SENSOR and a.active(t)
        )

    def actuator_corrupted(self, t: float) -> bool:
        """Whether any actuation workflow misbehaves at time *t*."""
        return any(a.target is AttackTarget.ACTUATOR and a.active(t) for a in self._attacks)

    def event_times(self) -> list[float]:
        """Sorted unique trigger/stop times (mode-transition instants)."""
        times: set[float] = set()
        for a in self._attacks:
            times.add(a.start)
            if a.stop is not None:
                times.add(a.stop)
        return sorted(times)

    def __len__(self) -> int:
        return len(self._attacks)

    def __iter__(self):
        return iter(self._attacks)
