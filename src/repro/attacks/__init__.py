"""Attack and failure injection (paper Section II-B, Tables I and II).

Misbehaviors are modeled exactly as the paper models them: corruptions of
sensor readings (``d^s_k``) or of control commands (``d^a_{k-1}``),
regardless of origin. Each :class:`~repro.attacks.base.Attack` combines

* a *target* — one sensing workflow or the actuation workflow,
* a *channel* — cyber (inside the workflow software) or physical (at the
  transducer), which determines where in a staged workflow the corruption is
  injected,
* an *activation window* — trigger and optional stop time,
* a *signal* — how the clean value is corrupted (bias, ramp, zeroing,
  stuck-at, scaling, replay, noise, override, ...).

:mod:`repro.attacks.catalog` instantiates the paper's eleven Table II
scenarios for the Khepera and an adapted suite for the Tamiya.
"""

from .base import Attack, AttackChannel, AttackTarget
from .scheduler import AttackSchedule
from .signals import (
    BiasSignal,
    NoiseSignal,
    OdometryTickInjection,
    OverrideSignal,
    RampSignal,
    ReplaySignal,
    ScaleSignal,
    Signal,
    StuckSignal,
    ZeroSignal,
)
from .sensor_attacks import (
    sensor_bias,
    sensor_dos,
    sensor_replay,
    sensor_noise_jamming,
    sensor_spoof_ramp,
)
from .actuator_attacks import (
    actuator_offset,
    actuator_runaway,
    tire_blowout,
    wheel_jamming,
)
from .catalog import Scenario, extended_khepera_scenarios, khepera_scenarios, tamiya_scenarios

__all__ = [
    "Attack",
    "AttackChannel",
    "AttackTarget",
    "AttackSchedule",
    "Signal",
    "BiasSignal",
    "RampSignal",
    "NoiseSignal",
    "ZeroSignal",
    "StuckSignal",
    "ScaleSignal",
    "OverrideSignal",
    "ReplaySignal",
    "OdometryTickInjection",
    "sensor_bias",
    "sensor_dos",
    "sensor_replay",
    "sensor_noise_jamming",
    "sensor_spoof_ramp",
    "actuator_offset",
    "actuator_runaway",
    "wheel_jamming",
    "tire_blowout",
    "Scenario",
    "khepera_scenarios",
    "extended_khepera_scenarios",
    "tamiya_scenarios",
]
