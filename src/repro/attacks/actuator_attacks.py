"""Convenience constructors for common actuator misbehaviors (Table I)."""

from __future__ import annotations

from typing import Sequence

from .base import Attack, AttackChannel, AttackTarget
from .signals import BiasSignal, OverrideSignal, RampSignal, ScaleSignal

__all__ = ["actuator_offset", "wheel_jamming", "tire_blowout", "actuator_runaway"]


def actuator_offset(
    actuator: str,
    offset: Sequence[float] | float,
    start: float,
    stop: float | None = None,
    components: Sequence[int] | None = None,
    channel: AttackChannel = AttackChannel.CYBER,
    name: str | None = None,
) -> Attack:
    """Constant command alteration (wheel-controller logic bomb, Table II #1)."""
    return Attack(
        name=name or f"{actuator}-offset",
        target=AttackTarget.ACTUATOR,
        workflow=actuator,
        channel=channel,
        signal=BiasSignal(offset),
        start=start,
        stop=stop,
        components=components,
    )


def wheel_jamming(
    actuator: str,
    wheel_component: int,
    start: float,
    stop: float | None = None,
    name: str | None = None,
) -> Attack:
    """One wheel physically jammed: its executed speed is forced to zero

    (Table II #2). Implemented as an override of the jammed component, so the
    effective anomaly ``d^a = -u_planned`` varies with the planner's command —
    which is why the paper sees a slightly higher FNR here (anomaly vanishes
    whenever the planner commands that wheel near zero).
    """
    return Attack(
        name=name or f"{actuator}-wheel-jam",
        target=AttackTarget.ACTUATOR,
        workflow=actuator,
        channel=AttackChannel.PHYSICAL,
        signal=OverrideSignal(0.0),
        start=start,
        stop=stop,
        components=(wheel_component,),
    )


def tire_blowout(
    actuator: str,
    wheel_component: int,
    drag_factor: float = 0.5,
    start: float = 0.0,
    stop: float | None = None,
    name: str | None = None,
) -> Attack:
    """Tire blowout: enormous friction drags one wheel (Table I row 6)."""
    return Attack(
        name=name or f"{actuator}-blowout",
        target=AttackTarget.ACTUATOR,
        workflow=actuator,
        channel=AttackChannel.PHYSICAL,
        signal=ScaleSignal(drag_factor),
        start=start,
        stop=stop,
        components=(wheel_component,),
    )


def actuator_runaway(
    actuator: str,
    rate: Sequence[float] | float,
    start: float,
    stop: float | None = None,
    components: Sequence[int] | None = None,
    name: str | None = None,
) -> Attack:
    """Unintended acceleration: command drifts upward (Toyota-style defect)."""
    return Attack(
        name=name or f"{actuator}-runaway",
        target=AttackTarget.ACTUATOR,
        workflow=actuator,
        channel=AttackChannel.CYBER,
        signal=RampSignal(rate),
        start=start,
        stop=stop,
        components=components,
    )
