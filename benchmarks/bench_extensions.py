"""Bench: extension studies beyond the paper's evaluation.

* **Response** (paper future work) — navigation failover completes the
  mission under a drifting IPS spoofer where no-response misses the goal.
* **Switching attacks** (Section VI open problem) — identification
  accuracy vs the attacker's target-switching period.
* **Sensor quality/quantity** (Section V-E) — monotone variance scaling.
* **Forensics** — quantification bias of the anomaly estimates against
  recorded ground-truth corruption (paper's 1.91% / 0.41% / 1.79% analog).
"""

import pytest

from repro.attacks.catalog import khepera_scenarios
from repro.eval.forensics import quantify_run
from repro.eval.runner import run_scenario
from repro.experiments.response import run_response
from repro.experiments.sensor_quality import run_sensor_quality
from repro.experiments.switching import run_switching
from repro.robots.khepera import khepera_rig


@pytest.mark.benchmark(group="extensions")
def test_response(benchmark, save_report):
    result = benchmark.pedantic(run_response, rounds=1, iterations=1)
    save_report("response", result.format())
    assert result.mission_saved
    assert result.failover_events and result.failover_events[0].source == "wheel_encoder"


@pytest.mark.benchmark(group="extensions")
def test_switching(benchmark, save_report):
    result = benchmark.pedantic(run_switching, rounds=1, iterations=1)
    save_report("switching", result.format())
    assert result.monotone_degradation()
    # Slow attackers are fully identified; even the fastest hopper cannot
    # push identification below a majority of attacked iterations.
    assert result.identification_accuracy[-1] > 0.9
    assert result.identification_accuracy[0] > 0.5


@pytest.mark.benchmark(group="extensions")
def test_sensor_quality(benchmark, save_report):
    result = benchmark.pedantic(run_sensor_quality, rounds=1, iterations=1)
    save_report("sensor_quality", result.format())
    assert result.quality_monotone()
    assert result.quantity_monotone()
    # A decade of sigma should move the variance by roughly two decades
    # (variance ~ sigma^2 through the WLS).
    assert result.quality_variances[-1] / result.quality_variances[0] > 30.0


@pytest.mark.benchmark(group="extensions")
def test_forensics(benchmark, save_report):
    rig = khepera_rig()
    rig.plan_path(0)
    scenario = next(s for s in khepera_scenarios() if s.number == 8)

    def run():
        result = run_scenario(rig, scenario, seed=42, stop_at_goal=False)
        return quantify_run(result.trace, rig.suite)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("forensics", report.format())
    # Paper analog: normalized quantification errors in the low single
    # digits (1.91% sensor, 0.41%/1.79% actuator).
    assert report.worst_normalized_bias() < 0.05
    ips = next(c for c in report.sensors if c.name == "ips")
    assert ips.mean_true_magnitude == pytest.approx(0.07, abs=0.005)
