"""Bench: Section VI ablations — mode sets, sliding windows, grouping."""

import pytest

from repro.experiments.ablation import run_ablation


@pytest.mark.benchmark(group="ablation")
def test_ablation(benchmark, save_report):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report("ablation", result.format())

    # Mode-set study: the complete set costs measurably more per iteration
    # (the paper's 2^p - 1 vs p trade-off) without accuracy gains here.
    single = next(r for r in result.modeset_rows if r[0] == "single-reference")
    complete = next(r for r in result.modeset_rows if r[0] == "complete")
    assert complete[1] > single[1]
    assert complete[4] > 1.5 * single[4], "complete mode set must cost more"
    assert single[2] < 0.05 and single[3] < 0.05

    # Window study: a 2-iteration glitch defeats c/w <= 2/2 but is absorbed
    # by 3/3 and larger; the drifting workflow defeats every window.
    by_name = {name: (glitch, drift) for name, glitch, drift in result.window_rows}
    assert by_name["sensor c/w=1/1"][0] == 1.0
    assert by_name["sensor c/w=3/3"][0] == 0.0
    assert by_name["sensor c/w=4/4"][0] == 0.0
    assert all(drift > 0.5 for _, drift in by_name.values())

    # Grouping study ran both directions.
    assert any("rejected" in line for line in result.grouping_lines)
    assert any("accepted" in line for line in result.grouping_lines)
