"""Bench: campaign-runner throughput and cache-hit economics.

Runs a small detection campaign (two scenarios, short missions) through
:func:`repro.campaign.run_campaign` against a throwaway store, twice:

* **cold** — every cell computed; the recorded mean is the end-to-end
  wall time including hashing, execution and artifact persistence, and
  ``cells_per_s`` is the runner's compute throughput;
* **warm** — the identical manifest against the now-populated store; every
  cell must be a cache hit (asserted), so the mean is pure
  hash-and-lookup overhead and ``cache_hit_rate`` must be 1.0.

Both tests carry the ``bench_smoke`` marker; ``scripts/bench_smoke.py``
copies ``cells``, ``cells_per_s`` and ``cache_hit_rate`` into
``BENCH_perf.json`` so the repository tracks the incremental runner's
overhead across PRs (docs/CAMPAIGNS.md).
"""

import pytest

from repro.campaign import CampaignManifest, ResultStore, run_campaign
from repro.campaign.manifest import detection_grid


def _manifest() -> CampaignManifest:
    return CampaignManifest(
        "bench-campaign",
        cells=detection_grid(
            "khepera", [1, 4], intensities=(0.0,), n_trials=1, duration=4.0
        ),
        description="campaign-runner throughput bench",
    )


def _record(benchmark, report) -> None:
    benchmark.extra_info["cells"] = report.total
    benchmark.extra_info["cells_per_s"] = round(report.cells_per_s, 3)
    benchmark.extra_info["cache_hit_rate"] = report.cache_hit_rate


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="campaign")
def test_campaign_cold_throughput(benchmark, tmp_path):
    manifest = _manifest()

    def cold():
        store = ResultStore(tmp_path / f"store-{cold.calls}")
        cold.calls += 1
        return run_campaign(manifest, store)

    cold.calls = 0
    report = benchmark.pedantic(cold, rounds=2, iterations=1, warmup_rounds=1)
    assert report.computed == report.total
    _record(benchmark, report)


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="campaign")
def test_campaign_warm_cache_hits(benchmark, tmp_path):
    manifest = _manifest()
    store = ResultStore(tmp_path / "store")
    run_campaign(manifest, store)  # populate once, outside the measurement

    report = benchmark.pedantic(
        lambda: run_campaign(manifest, store), rounds=3, iterations=1, warmup_rounds=1
    )
    assert report.cached == report.total, "warm run must be all cache hits"
    assert report.cache_hit_rate == 1.0
    _record(benchmark, report)
