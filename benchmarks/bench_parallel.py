"""Bench: serial vs process-pool throughput of the evaluation layer.

Measures the same Monte-Carlo workload through ``monte_carlo`` serial and
through the :mod:`repro.eval.parallel` pool at 2 and 4 workers, plus a
serial-vs-parallel fault campaign. The interesting number is
``speedup_vs_serial`` (computed by ``scripts/bench_smoke.py`` from the
``baseline`` extra-info link) **interpreted against the recorded
``cpu_count``** — on a single-core machine the pool can only add process
overhead, and the recorded numbers say so honestly; on an N-core machine
the Monte-Carlo sweep should approach N-fold.

All tests carry the ``bench_smoke`` marker so ``scripts/bench_smoke.py``
records them to ``BENCH_perf.json`` alongside the iteration-latency
benchmarks.
"""

import os

import pytest

from repro.attacks.catalog import khepera_scenarios
from repro.eval.fault_campaign import run_fault_campaign
from repro.eval.parallel import ParallelConfig
from repro.eval.runner import monte_carlo
from repro.robots.khepera import khepera_rig

N_TRIALS = 4
DURATION = 4.0
CAMPAIGN = dict(
    intensities=(0.0, 0.1),
    n_trials=2,
    base_seed=11,
    duration=DURATION,
    stop_at_goal=False,
)


def _mc(rig, parallel=None):
    scenario = khepera_scenarios()[0]
    return monte_carlo(
        rig,
        scenario,
        N_TRIALS,
        base_seed=7,
        duration=DURATION,
        stop_at_goal=False,
        parallel=parallel,
    )


def _record_env(benchmark, workers, baseline=None):
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    if baseline is not None:
        benchmark.extra_info["baseline"] = baseline


@pytest.mark.bench_smoke
@pytest.mark.parallel
@pytest.mark.benchmark(group="parallel")
def test_monte_carlo_serial_baseline(benchmark, khepera_pool):
    _record_env(benchmark, workers=1)
    benchmark.pedantic(lambda: _mc(khepera_pool), rounds=2, iterations=1, warmup_rounds=1)


@pytest.mark.bench_smoke
@pytest.mark.parallel
@pytest.mark.benchmark(group="parallel")
@pytest.mark.parametrize("workers", [2, 4])
def test_monte_carlo_parallel_throughput(benchmark, khepera_pool, workers):
    _record_env(benchmark, workers=workers, baseline="test_monte_carlo_serial_baseline")
    config = ParallelConfig(workers=workers)
    benchmark.pedantic(
        lambda: _mc(khepera_pool, parallel=config), rounds=2, iterations=1, warmup_rounds=1
    )


@pytest.mark.bench_smoke
@pytest.mark.parallel
@pytest.mark.benchmark(group="parallel")
def test_campaign_serial_baseline(benchmark, khepera_pool):
    scenarios = [s for s in khepera_scenarios() if s.number in (1, 4)]
    _record_env(benchmark, workers=1)
    benchmark.pedantic(
        lambda: run_fault_campaign(khepera_pool, scenarios, **CAMPAIGN),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.bench_smoke
@pytest.mark.parallel
@pytest.mark.benchmark(group="parallel")
def test_campaign_parallel_throughput(benchmark, khepera_pool):
    scenarios = [s for s in khepera_scenarios() if s.number in (1, 4)]
    _record_env(benchmark, workers=2, baseline="test_campaign_serial_baseline")
    benchmark.pedantic(
        lambda: run_fault_campaign(khepera_pool, scenarios, parallel=2, **CAMPAIGN),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )


@pytest.fixture(scope="module")
def khepera_pool():
    rig = khepera_rig()
    rig.plan_path(0)
    return rig
