"""Bench: Fig 6 — raw multi-mode engine outputs for scenario #8.

Regenerates the eight panels as time series and checks the narrated
waypoints: the IPS x anomaly steps to ~+0.07 m at 4 s (paper: +0.069 ±
0.002), other sensors stay silent, the actuator anomaly shows the
-/+6000-unit differential after 10 s, and the mode/alarm panels select S1
and A1.
"""

import numpy as np
import pytest

from repro.experiments.fig6 import run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6(benchmark, save_report):
    result = benchmark.pedantic(run_fig6, kwargs={"seed": 42}, rounds=1, iterations=1)
    cp = result.checkpoints()
    save_report("fig6", result.format())

    assert abs(cp["ips_x_before"]) < 0.01
    assert cp["ips_x_after"] == pytest.approx(0.07, abs=0.005)
    assert cp["ips_x_after_std"] < 0.02
    assert cp["we_x_after"] < 0.02
    assert cp["lidar_d_after"] < 0.03
    assert cp["actuator_diff_after"] == pytest.approx(0.08, abs=0.02)
    assert cp["sensor_mode_after_ips"] == 1.0
    assert cp["actuator_mode_after_wheel"] > 0.9

    # Panel 5/7 statistics cross their thresholds after the triggers.
    after_ips = (result.times > 4.5) & (result.times < 10.0)
    assert np.mean(result.sensor_statistic[after_ips] > result.sensor_threshold[after_ips]) > 0.95
    after_wheel = result.times > 10.5
    assert np.mean(
        result.actuator_statistic[after_wheel] > result.actuator_threshold[after_wheel]
    ) > 0.8
