"""Bench: Table II — the eleven Khepera attack/failure scenarios.

Regenerates the paper's headline table: per-scenario detection result
(Table III mode-transition labels), detection delays, and FPR/FNR, plus the
Table III mode-definition listing. Asserts the paper's claims: every
scenario detected and identified, sub-second average delays, and average
FPR/FNR in the low single-digit percent range.
"""

import pytest

from repro.eval.tables import format_table
from repro.experiments.common import KHEPERA_SENSOR_ORDER, sensor_mode_table
from repro.experiments.table2 import run_table2


def render_table3() -> str:
    table = sensor_mode_table(KHEPERA_SENSOR_ORDER)
    rows = sorted(
        ((label, "+".join(sorted(sensors)) or "none") for sensors, label in table.items()),
        key=lambda row: int(row[0][1:]),
    )
    return format_table(
        ["Mode", "Misbehaving sensors"],
        rows,
        title="Table III reproduction: sensor mode definitions",
    )


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, save_report):
    result = benchmark.pedantic(run_table2, kwargs={"n_trials": 3}, rounds=1, iterations=1)
    save_report("table2", result.format() + "\n\n" + render_table3())

    # Paper claims: all scenarios detected and identified...
    identified = [row.identified for row in result.rows]
    assert sum(identified) >= 10, f"scenarios not identified: {[r.number for r in result.rows if not r.identified]}"
    # ... with low error rates (paper: 0.86% / 0.97% averages) ...
    assert result.average_fpr < 0.05
    assert result.average_fnr < 0.05
    # ... and sub-second average detection delays (paper: 0.35s / 0.61s).
    assert result.average_sensor_delay is not None and result.average_sensor_delay < 1.0
    assert result.average_actuator_delay is not None and result.average_actuator_delay < 1.0
