"""Bench: engineering throughput of the detection pipeline.

Not a paper table — it answers the deployment question Section IV raises
implicitly: can the multi-mode engine keep up with a robot's control rate?
Measured per control iteration for the paper's two prototypes and for the
complete mode set, using pytest-benchmark's statistics. A batched-replay
benchmark covers the offline path (:func:`repro.core.batch.replay_batch`)
that experiment sweeps amortize Python overhead with.

All tests here carry the ``bench_smoke`` marker; ``scripts/bench_smoke.py``
runs exactly this file and records the means to ``BENCH_perf.json`` so every
PR leaves a perf trajectory behind. See ``docs/PERFORMANCE.md`` for the
cost model and the recorded baselines.
"""

import numpy as np
import pytest

from repro.core.batch import replay_batch
from repro.core.modes import complete_modes
from repro.robots.khepera import khepera_rig
from repro.robots.tamiya import tamiya_rig


def _detector_and_stream(rig, modes=None, n_warm=5):
    detector = rig.detector(modes=modes)
    rng = np.random.default_rng(0)
    state = np.array(rig.mission.start_pose, dtype=float)
    control = np.full(rig.model.control_dim, 0.1)
    readings = [rig.suite.measure(state, rng) for _ in range(64)]
    for z in readings[:n_warm]:
        detector.step(control, z)
    index = {"i": n_warm}

    def step():
        z = readings[index["i"] % len(readings)]
        index["i"] += 1
        detector.step(control, z)

    return step


def _synthetic_traces(rig, n_traces, n_steps, seed=0):
    """Recorded (controls, readings) logs for the batched-replay benchmark."""
    rng = np.random.default_rng(seed)
    state = np.array(rig.mission.start_pose, dtype=float)
    control = np.full(rig.model.control_dim, 0.1)
    traces = []
    for _ in range(n_traces):
        controls = [control.copy() for _ in range(n_steps)]
        readings = [rig.suite.measure(state, rng) for _ in range(n_steps)]
        traces.append((controls, readings))
    return traces


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="perf")
def test_khepera_iteration_throughput(benchmark, khepera_shared):
    step = _detector_and_stream(khepera_shared)
    benchmark(step)
    # One detector iteration must fit comfortably inside the 50 ms control
    # period (paper runs RoboADS inside the planner in real time).
    assert benchmark.stats["mean"] < 0.05


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="perf")
def test_khepera_complete_modeset_throughput(benchmark, khepera_shared):
    modes = complete_modes(khepera_shared.suite, max_corrupted=2)
    step = _detector_and_stream(khepera_shared, modes=modes)
    benchmark(step)
    # The shared-workspace bank runs the 7-mode complete set in ~2.2 ms on
    # the reference machine; the pre-workspace implementation took ~4.3 ms,
    # so this bound both fails a regression to the old code path and leaves
    # ~2x headroom for slower hardware.
    assert benchmark.stats["mean"] < 0.004


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="perf")
def test_tamiya_iteration_throughput(benchmark, tamiya_shared):
    step = _detector_and_stream(tamiya_shared)
    benchmark(step)
    assert benchmark.stats["mean"] < 0.1


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="perf")
def test_batched_replay_throughput(benchmark, khepera_shared):
    """Offline sweep path: 16 recorded missions through one detector."""
    n_traces, n_steps = 16, 25
    traces = _synthetic_traces(khepera_shared, n_traces, n_steps)
    detector = khepera_shared.detector()

    def run_batch():
        replay_batch(detector, traces, keep_reports=False)

    benchmark.pedantic(run_batch, rounds=3, iterations=1, warmup_rounds=1)
    # Per-iteration cost of the batched path must stay in the same band as
    # online stepping — the batch's value is amortized setup and stacked
    # outputs, not a different filter.
    per_step = benchmark.stats["mean"] / (n_traces * n_steps)
    assert per_step < 0.004


@pytest.fixture(scope="module")
def khepera_shared():
    return khepera_rig()


@pytest.fixture(scope="module")
def tamiya_shared():
    return tamiya_rig()
