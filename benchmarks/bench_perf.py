"""Bench: engineering throughput of the detection pipeline.

Not a paper table — it answers the deployment question Section IV raises
implicitly: can the multi-mode engine keep up with a robot's control rate?
Measured per control iteration for the paper's two prototypes and for the
complete mode set, using pytest-benchmark's statistics.
"""

import numpy as np
import pytest

from repro.core.modes import complete_modes
from repro.robots.khepera import khepera_rig
from repro.robots.tamiya import tamiya_rig


def _detector_and_stream(rig, modes=None, n_warm=5):
    detector = rig.detector(modes=modes)
    rng = np.random.default_rng(0)
    state = np.array(rig.mission.start_pose, dtype=float)
    control = np.full(rig.model.control_dim, 0.1)
    readings = [rig.suite.measure(state, rng) for _ in range(64)]
    for z in readings[:n_warm]:
        detector.step(control, z)
    index = {"i": n_warm}

    def step():
        z = readings[index["i"] % len(readings)]
        index["i"] += 1
        detector.step(control, z)

    return step


@pytest.mark.benchmark(group="perf")
def test_khepera_iteration_throughput(benchmark, khepera_shared):
    step = _detector_and_stream(khepera_shared)
    benchmark(step)
    # One detector iteration must fit comfortably inside the 50 ms control
    # period (paper runs RoboADS inside the planner in real time).
    assert benchmark.stats["mean"] < 0.05


@pytest.mark.benchmark(group="perf")
def test_khepera_complete_modeset_throughput(benchmark, khepera_shared):
    modes = complete_modes(khepera_shared.suite, max_corrupted=2)
    step = _detector_and_stream(khepera_shared, modes=modes)
    benchmark(step)
    assert benchmark.stats["mean"] < 0.1


@pytest.mark.benchmark(group="perf")
def test_tamiya_iteration_throughput(benchmark, tamiya_shared):
    step = _detector_and_stream(tamiya_shared)
    benchmark(step)
    assert benchmark.stats["mean"] < 0.1


@pytest.fixture(scope="module")
def khepera_shared():
    return khepera_rig()


@pytest.fixture(scope="module")
def tamiya_shared():
    return tamiya_rig()
