"""Bench: Section V-D — generality on the Tamiya RC car.

Asserts the paper's claim that the identical detector construction works on
a robot with a different dynamic model and sensor mix, with error rates and
delays of the same order as the paper's 2.77% / 0.83% / 0.33 s.
"""

import pytest

from repro.experiments.tamiya_eval import run_tamiya_eval


@pytest.mark.benchmark(group="tamiya")
def test_tamiya(benchmark, save_report):
    result = benchmark.pedantic(run_tamiya_eval, kwargs={"n_trials": 2}, rounds=1, iterations=1)
    save_report("tamiya", result.format())

    assert result.average_fpr < 0.05
    assert result.average_fnr < 0.05
    assert result.average_delay is not None and result.average_delay < 1.0
    # Every sensor scenario's condition sequence must be identified exactly.
    for row in result.rows:
        assert row.detected_seq == row.truth_seq, f"scenario #{row.number}"
