"""Bench: Table IV — actuator anomaly variance under different sensor sets.

Asserts the paper's ordering: IPS (best single) < wheel encoder << LiDAR,
and the all-three fusion at least as good as the best single sensor.
"""

import pytest

from repro.experiments.table4 import run_table4


@pytest.mark.benchmark(group="table4")
def test_table4(benchmark, save_report):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_report("table4", result.format())

    assert result.ordering_holds()
    # Empirical variances must agree with the filter's reported P^a (the
    # estimator is covariance-consistent).
    for setting, (emp_l, emp_r) in result.variances.items():
        theo_l, theo_r = result.theoretical[setting]
        assert emp_l == pytest.approx(theo_l, rel=0.5)
        assert emp_r == pytest.approx(theo_r, rel=0.5)
