"""Bench: Fig 7 — decision-parameter ROC curves and F1 grids.

Asserts the paper's qualitative findings: the ROC hugs the top-left corner
at sensible confidence levels; for a fixed window the F1 "increases first
and reduces afterward" over the criteria; and the paper's chosen
configurations (sensor 2/2 @ alpha=0.005, actuator 3/6 @ alpha=0.05) score
within a whisker of the grid optimum.
"""

import pytest

from repro.experiments.fig7 import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7(benchmark, save_report):
    result = benchmark.pedantic(run_fig7, kwargs={"n_trials": 1}, rounds=1, iterations=1)
    save_report("fig7", result.format())

    # 7a/7b: at small alpha the windowed detectors sit in the top-left
    # corner (high TPR, tiny FPR) — the paper's inset region.
    for channel in ("sensor", "actuator"):
        fpr, tpr = result.roc_series(6, 6, channel)[1]  # alpha = 0.005
        assert fpr < 0.05, channel
    sensor_fpr, sensor_tpr = result.roc_series(3, 3, "sensor")[1]
    assert sensor_tpr > 0.95

    # ROC FPR grows with alpha for every series (curves sweep rightward).
    for (w, c) in result.roc:
        fprs = [p.sensor.false_positive_rate for p in result.roc[(w, c)]]
        assert fprs[0] <= fprs[-1]

    # 7c/7d: rise-then-fall of F1 in the criteria for the paper's windows,
    # and the paper's chosen configs near the optimum.
    sensor_grid = result.f1_grid("sensor")
    actuator_grid = result.f1_grid("actuator")
    (best_w, best_c), best_f1 = result.best_config("actuator")
    assert actuator_grid[(6, 3)] >= best_f1 - 0.03, "paper's 3/6 config near-optimal"
    assert sensor_grid[(2, 2)] >= result.best_config("sensor")[1] - 0.02
    # Monotone rise at the start and fall at the end for w=6 (actuator).
    w6 = [actuator_grid[(6, c)] for c in range(1, 7)]
    assert w6[1] > w6[0]
    assert w6[-1] < max(w6)
