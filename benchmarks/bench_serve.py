"""Bench: streaming fleet throughput, fused vs serial session stepping.

The live-service question behind :mod:`repro.serve.fused`: how many
messages per second can one process sustain when a fleet of co-rigged
sessions streams concurrently? The serial path steps each
:class:`~repro.serve.session.DetectorSession` independently (one B=1
stacked-bank call per message); the fused path coalesces each tick's
messages into one :class:`~repro.serve.fused.FusedSessionBank` kernel call
at batch width. Both produce bit-identical reports and snapshots
(``tests/test_fused.py``), so the only difference worth measuring is
throughput.

Fleet sizes 1, 8 and 64 map the batching win: a single session cannot fuse
(``min_batch``) and records the fused layer's pass-through overhead, 8 is
the acceptance fleet (``speedup_vs_serial`` recorded in
``BENCH_perf.json``), and 64 shows the amortization ceiling. All tests
carry the ``bench_smoke`` marker; ``scripts/bench_smoke.py`` links each
fused run to its serial baseline by name and records ``messages_per_s``.
"""

import numpy as np
import pytest

from repro.robots.khepera import khepera_rig
from repro.serve.fused import FusedSessionBank
from repro.serve.messages import SessionMessage
from repro.serve.session import DetectorSession

N_STEPS = 50
FLEET_SIZES = (1, 8, 64)


def _message_stream(rig, n_steps, seed=0):
    """Synthetic homogeneous stream: one nominal message per control tick."""
    rng = np.random.default_rng(seed)
    state = np.array(rig.mission.start_pose, dtype=float)
    control = np.full(rig.model.control_dim, 0.1)
    return [
        SessionMessage(
            seq=k,
            t=k * rig.model.dt,
            control=control.copy(),
            reading=rig.suite.measure(state, rng),
        )
        for k in range(n_steps)
    ]


def _fresh_sessions(rig, n):
    return [DetectorSession(rig.detector(), robot_id=f"robot-{i}") for i in range(n)]


def _record(benchmark, sessions, baseline=None):
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["messages"] = sessions * N_STEPS
    if baseline is not None:
        benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["messages_per_s"] = (
        sessions * N_STEPS / benchmark.stats["mean"]
    )


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="serve")
@pytest.mark.parametrize("sessions", FLEET_SIZES)
def test_serve_serial_throughput(benchmark, khepera_shared, messages, sessions):
    """Per-session serial stepping: the drain loop every tick, one by one."""

    def run(fleet):
        for message in messages:
            for session in fleet:
                session.process(message)

    benchmark.pedantic(
        run,
        setup=lambda: ((_fresh_sessions(khepera_shared, sessions),), {}),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    _record(benchmark, sessions)


@pytest.mark.bench_smoke
@pytest.mark.benchmark(group="serve")
@pytest.mark.parametrize("sessions", FLEET_SIZES)
def test_serve_fused_throughput(benchmark, khepera_shared, messages, sessions):
    """Fused stepping: each tick's fleet messages in one batched kernel."""

    def run(fleet):
        bank = FusedSessionBank()
        for message in messages:
            bank.process([(session, message) for session in fleet])

    benchmark.pedantic(
        run,
        setup=lambda: ((_fresh_sessions(khepera_shared, sessions),), {}),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    _record(
        benchmark,
        sessions,
        baseline=f"test_serve_serial_throughput[{sessions}]",
    )


@pytest.fixture(scope="module")
def khepera_shared():
    return khepera_rig()


@pytest.fixture(scope="module")
def messages(khepera_shared):
    return _message_stream(khepera_shared, N_STEPS)
