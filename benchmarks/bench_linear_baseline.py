"""Bench: Section V-G — comparison against a linearize-once approach.

Asserts the paper's finding: the linear-system baseline's estimation errors
grow as the mission departs from the initial linearization point, producing
a catastrophic sensor FPR (paper: 61.68%) where RoboADS stays clean, with
no compensating FNR advantage.
"""

import pytest

from repro.experiments.linear_benchmark import run_linear_benchmark


@pytest.mark.benchmark(group="linear")
def test_linear_baseline(benchmark, save_report):
    result = benchmark.pedantic(run_linear_benchmark, rounds=1, iterations=1)
    save_report("linear_baseline", result.format())

    assert result.baseline_sensor_fpr > 0.40, "baseline must false-alarm massively"
    assert result.roboads_sensor_fpr < 0.05, "RoboADS must stay clean on same runs"
    assert result.gap > 0.35
    # The baseline fails by false positives, not by missing things.
    assert result.baseline_sensor_fnr < 0.10
