"""Bench: Section V-H — evasive-attack magnitude bounds.

Asserts the paper's conclusion: to stay stealthy, an attacker must shrink
the attack vectors to magnitudes far below the Table II attacks (paper:
IPS < 0.02 m; wheels < 900 units) — too small to endanger the mission.
"""

import pytest

from repro.experiments.evasive import run_evasive


@pytest.mark.benchmark(group="evasive")
def test_evasive(benchmark, save_report):
    result = benchmark.pedantic(run_evasive, rounds=1, iterations=1)
    save_report("evasive", result.format())

    # Table II magnitudes must be detected.
    assert result.ips_detected[-1], "0.07 m IPS shift must be detected"
    assert result.wheel_detected[-1], "6000-unit wheel alteration must be detected"
    # Stealth bounds exist and are far below the attack magnitudes
    # (same-order as the paper's 20 mm / 900 units).
    assert 0.0 < result.ips_stealth_bound <= 0.035
    assert 0.0 < result.wheel_stealth_bound_units <= 3000.0
