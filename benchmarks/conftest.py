"""Benchmark harness helpers.

Every bench regenerates one paper table/figure, asserts the paper's
qualitative claims, persists the rendered report and prints it (visible
with ``pytest -s``). Reports land in the content-addressed artifact store
(``benchmarks/artifacts/`` — see docs/CAMPAIGNS.md) with a plain-text
compat copy under ``benchmarks/results/`` for quick diffing.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
ARTIFACTS_DIR = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def save_report():
    from repro.campaign.store import ResultStore

    RESULTS_DIR.mkdir(exist_ok=True)
    store = ResultStore(ARTIFACTS_DIR)

    def _save(name: str, text: str) -> None:
        address = store.put_report(name, text)
        # Compat shim: keep the historical .txt alongside the store object.
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}; store object {address[:16]}]")

    return _save
