"""Benchmark harness helpers.

Every bench regenerates one paper table/figure, asserts the paper's
qualitative claims, saves the rendered report under
``benchmarks/results/`` and prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
