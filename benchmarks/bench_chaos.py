"""Bench: crash-recovery latency and replay throughput of the sharded fleet.

Runs a fixed kill schedule (every worker SIGKILLed once) against a
:class:`~repro.serve.shard.ShardManager` streaming synthetic missions and
records, beyond the wall-clock mean, the recovery numbers the robustness
story actually cares about: mean/max death-to-restored latency and
journal-replay throughput, reduced from the
:class:`~repro.serve.chaos.ChaosReport`. ``scripts/bench_smoke.py`` copies
them into ``BENCH_perf.json`` so the recorded perf trajectory tracks the
cost of crash tolerance alongside detector throughput.
"""

import numpy as np
import pytest

from repro.core.detector import RoboADS
from repro.dynamics.differential_drive import DifferentialDriveModel
from repro.sensors.lidar import WallDistanceSensor
from repro.sensors.pose_sensors import IPS, OdometryPoseSensor
from repro.sensors.suite import SensorSuite
from repro.serve import (
    SessionMessage,
    SnapshotSpool,
    SupervisorConfig,
    run_chaos_fleet,
)
from repro.world.map import WorldMap

PROCESS = np.diag([0.0005**2, 0.0005**2, 0.0015**2])
WORLD = WorldMap.rectangle(3.0, 3.0)
N_MESSAGES = 40
N_ROBOTS = 2
WORKERS = 2
FAST = SupervisorConfig(heartbeat_interval=0.05, heartbeat_timeout=0.5)


def build_detector() -> RoboADS:
    """The standard three-sensor differential-drive rig."""
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    return RoboADS(
        DifferentialDriveModel(dt=0.05),
        suite,
        PROCESS,
        initial_state=np.array([1.5, 1.5, 0.0]),
        nominal_control=np.array([0.1, 0.12]),
    )


def _mission(n: int, seed: int):
    model = DifferentialDriveModel(dt=0.05)
    suite = SensorSuite([IPS(), OdometryPoseSensor(), WallDistanceSensor(WORLD)])
    rng = np.random.default_rng(seed)
    x = np.array([1.5, 1.5, 0.0])
    q_sqrt = np.sqrt(np.diag(PROCESS))
    messages = []
    for k in range(n):
        u = np.array([0.1, 0.12]) + 0.05 * rng.standard_normal(2)
        x = model.normalize_state(model.f(x, u) + q_sqrt * rng.standard_normal(3))
        messages.append(
            SessionMessage(seq=k, t=k * model.dt, control=u, reading=suite.measure(x, rng))
        )
    return messages


@pytest.mark.bench_smoke
@pytest.mark.chaos
@pytest.mark.benchmark(group="chaos")
def test_crash_recovery_throughput(benchmark, tmp_path):
    """Kill every worker once mid-stream; record recovery latency/replay."""
    streams = {f"r{i}": _mission(N_MESSAGES, seed=80 + i) for i in range(N_ROBOTS)}
    reports = []

    def run(round_index=[0]):
        round_index[0] += 1
        spool_dir = tmp_path / f"spool-{round_index[0]}"
        results, report = run_chaos_fleet(
            build_detector,
            streams,
            workers=WORKERS,
            spool=SnapshotSpool(spool_dir),
            spool_every=10,
            supervisor_config=FAST,
            kill_every_worker=True,
        )
        assert report.crashes_survived >= WORKERS
        reports.append(report)
        return results

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    last = reports[-1]
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["crashes_survived"] = last.crashes_survived
    benchmark.extra_info["messages_replayed"] = last.messages_replayed
    benchmark.extra_info["recovery_latency_mean_s"] = last.recovery_latency_mean_s
    benchmark.extra_info["recovery_latency_max_s"] = last.recovery_latency_max_s
    benchmark.extra_info["replayed_per_s"] = last.replayed_per_s
