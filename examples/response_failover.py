"""Close the loop: detect the spoofer, then survive it.

The paper leaves response algorithms as future work; this example runs the
extension shipped in :class:`repro.core.response.NavigationFailover`. A
drifting IPS spoofer (the classic GPS-capture pattern: small ramp, no step)
slowly walks the planner off course. Without a response the robot parks
where the *attacker* wants; with failover, the confirmed IPS alarm reroutes
navigation to the wheel-encoder workflow mid-mission.

Run with::

    python examples/response_failover.py
"""

import numpy as np

from repro import khepera_rig, run_scenario
from repro.attacks import Scenario, sensor_spoof_ramp
from repro.core import NavigationFailover


def spoof_scenario() -> Scenario:
    return Scenario(
        0,
        "IPS spoof ramp",
        "drifting IPS spoofer steering the planner off course",
        "x reading drifts at 30 mm/s from t=4s",
        lambda: [sensor_spoof_ramp("ips", rate=(0.03,), start=4.0, components=(0,))],
    )


def main() -> None:
    rig = khepera_rig()
    goal = np.array(rig.mission.goal)
    scenario = spoof_scenario()

    unprotected = run_scenario(rig, scenario, seed=800)
    miss = np.linalg.norm(unprotected.trace.true_states[-1][:2] - goal)
    print(f"Without response: mission 'completes' {miss:.3f} m away from the goal")

    responder = NavigationFailover(preference=("ips", "wheel_encoder"))
    protected = run_scenario(rig, scenario, seed=800, responder=responder)
    miss = np.linalg.norm(protected.trace.true_states[-1][:2] - goal)
    print(f"With failover:    mission completes {miss:.3f} m from the goal")

    for event in responder.events:
        print(f"  t={event.time:.2f}s navigation switched to {event.source!r} ({event.reason})")

    delays = [e.delay for e in protected.delays_for("sensor") if e.delay is not None]
    if delays:
        print(f"  (IPS misbehavior was confirmed {delays[0]:.2f} s after the spoofer started)")


if __name__ == "__main__":
    main()
