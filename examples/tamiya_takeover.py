"""Steering takeover on the Tamiya RC car (actuator misbehavior).

The same detector construction as the Khepera — only the dynamic model and
sensor suite differ (the paper's Section V-D generality claim). An injected
steering offset (a Jeep-hack style takeover) fires mid-mission; the script
shows how the actuator anomaly estimate exposes it even while the PID
controller fights the takeover (so the car's trajectory alone looks merely
"sloppy", not obviously hijacked).

Run with::

    python examples/tamiya_takeover.py
"""

import numpy as np

from repro import run_scenario, tamiya_rig
from repro.attacks import tamiya_scenarios


def main() -> None:
    rig = tamiya_rig()
    scenario = next(s for s in tamiya_scenarios() if s.number == 2)
    print(f"Scenario: {scenario.name} — {scenario.detail}\n")

    result = run_scenario(rig, scenario, seed=11)
    trace = result.trace

    print("time   planned δ   executed δ   estimated d̂a_δ   alarm")
    for k in range(0, len(trace), len(trace) // 14):
        report = trace.reports[k]
        print(
            f"{trace.times[k]:5.1f}s  {trace.planned_controls[k][1]:+.3f} rad  "
            f"{trace.executed_controls[k][1]:+.3f} rad     "
            f"{report.actuator_anomaly[1]:+.3f} rad       "
            f"{'A1' if report.actuator_alarm else '--'}"
        )

    attacked = [
        r.actuator_anomaly[1]
        for k, r in enumerate(trace.reports)
        if trace.truth_actuator[k]
    ]
    print(
        f"\nMean estimated steering corruption while attacked: "
        f"{np.mean(attacked[5:]):+.3f} rad (injected +0.350 rad)"
    )
    delay = result.mean_delay("actuator")
    if delay is not None:
        print(f"Detection delay: {delay:.2f} s")
    print(result.summary())


if __name__ == "__main__":
    main()
