"""Tune RoboADS decision parameters offline (the paper's Fig 7 workflow).

The decision maker consumes only raw per-iteration Chi-square statistics,
so one pool of recorded runs supports arbitrarily many ``(alpha, w, c)``
configurations — replayed offline, bit-exact with online behaviour. This
script records a small pool, sweeps the grid, and prints the pick.

Run with::

    python examples/parameter_tuning.py
"""

from repro import khepera_rig, khepera_scenarios, run_scenario
from repro.eval import f1_sweep, roc_sweep


def main() -> None:
    rig = khepera_rig()

    print("Recording the run pool (3 attacks + 1 clean mission)...")
    runs = []
    for number in (3, 6, 1):
        scenario = next(s for s in khepera_scenarios() if s.number == number)
        runs.append(run_scenario(rig, scenario, seed=50 + number))
    runs.append(run_scenario(rig, None, seed=99))

    print("\nSensor-detection ROC over alpha (c/w = 3/3):")
    for point in roc_sweep(runs, alphas=[0.0005, 0.005, 0.05, 0.5], window=3, criteria=3):
        counts = point.sensor
        print(
            f"  alpha={point.config.sensor_alpha:<7g} "
            f"FPR={counts.false_positive_rate:6.2%}  TPR={counts.true_positive_rate:6.2%}"
        )

    print("\nF1 over (w, c) at the paper's alphas (sensor 0.005 / actuator 0.05):")
    points = f1_sweep(runs, windows=range(1, 7))
    best_sensor = max(points, key=lambda p: p.sensor.f1)
    best_actuator = max(points, key=lambda p: p.actuator.f1)
    for label, best, counts in (
        ("sensor", best_sensor, best_sensor.sensor),
        ("actuator", best_actuator, best_actuator.actuator),
    ):
        cfg = best.config
        print(
            f"  best {label}: c/w = {cfg.sensor_criteria}/{cfg.sensor_window} "
            f"(F1 = {counts.f1:.3f})"
        )
    print("\nPaper's choices: sensor c/w = 2/2 @ alpha 0.005; actuator c/w = 3/6 @ alpha 0.05.")


if __name__ == "__main__":
    main()
