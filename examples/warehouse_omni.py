"""Warehouse omnidirectional robot: a third platform from the public API.

The paper's introduction counts warehouse robots among its targets; this
example builds RoboADS for a mecanum-wheeled base (3-dimensional control:
longitudinal, lateral, yaw) and detects a *lateral creep* actuator fault —
an attack class that cannot even be expressed on a differential drive, and
that shows the unknown-input dimension scaling transparently with the
platform.

Run with::

    python examples/warehouse_omni.py
"""

import numpy as np

from repro import RoboADS
from repro.dynamics import OmnidirectionalModel
from repro.sensors import IPS, OdometryPoseSensor, SensorSuite


def main() -> None:
    model = OmnidirectionalModel(dt=0.1)
    suite = SensorSuite(
        [
            IPS(sigma_xy=0.002, sigma_theta=0.004),
            OdometryPoseSensor(name="odometry"),
        ]
    )
    detector = RoboADS(
        model,
        suite,
        process_noise=np.diag([1e-6, 1e-6, 4e-6]),
        initial_state=np.zeros(3),
        nominal_control=np.array([0.1, 0.1, 0.1]),
    )
    print(f"Platform control channels: {model.control_labels}")

    # Drive a shelf-to-shelf shuttle: forward with a gentle yaw. From
    # t = 3 s a miscalibrated (or hijacked) wheel controller adds lateral
    # drift the planner never commanded.
    rng = np.random.default_rng(4)
    x_true = np.zeros(3)
    control = np.array([0.4, 0.0, 0.05])
    creep = np.array([0.0, 0.15, 0.0])
    q_sigma = np.sqrt([1e-6, 1e-6, 4e-6])

    detected_at = None
    for k in range(1, 121):
        t = k * model.dt
        executed = control + (creep if t >= 3.0 else 0.0)
        x_true = model.normalize_state(
            model.f(x_true, executed) + q_sigma * rng.standard_normal(3)
        )
        report = detector.step(control, suite.measure(x_true, rng))
        if t >= 3.0 and report.actuator_alarm and detected_at is None:
            detected_at = t
            estimate = report.actuator_anomaly
            print(
                f"t={t:.1f}s  actuator misbehavior confirmed; "
                f"d̂a = (vx {estimate[0]:+.3f}, vy {estimate[1]:+.3f}, "
                f"ω {estimate[2]:+.3f}) — injected lateral +0.150 m/s"
            )
    if detected_at is None:
        raise SystemExit("creep was not detected — unexpected")
    print(f"Detection delay: {detected_at - 3.0:.1f} s")


if __name__ == "__main__":
    main()
