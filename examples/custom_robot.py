"""Build RoboADS for your own robot, from the public API pieces.

The detector needs exactly what any planning stack already has (paper
Section III-A): a kinematic model ``f``, per-sensor measurement models
``h_i`` with noise covariances, and the process noise. This example builds
an outdoor unicycle robot with a GPS, a magnetometer and an odometry unit —
including the Section VI situation where a heading-only magnetometer cannot
anchor a mode by itself and must be *grouped* with the GPS.

Run with::

    python examples/custom_robot.py
"""

import numpy as np

from repro import Mode, RoboADS
from repro.dynamics import UnicycleModel
from repro.errors import ObservabilityError
from repro.sensors import GPS, Magnetometer, OdometryPoseSensor, SensorGroup, SensorSuite


def main() -> None:
    model = UnicycleModel(dt=0.1)
    gps = GPS(sigma_xy=0.02)              # RTK-grade
    magnetometer = Magnetometer(sigma_theta=0.02)
    odometry = OdometryPoseSensor(sigma_xy=0.01, sigma_theta=0.01, name="odometry")

    # First attempt: every sensor as its own reference (the default mode
    # construction). The magnetometer alone cannot reconstruct the robot
    # state, so NUISE refuses the mode — exactly the paper's Section VI
    # "sensor capabilities" discussion.
    naive_suite = SensorSuite([gps, magnetometer, odometry])
    try:
        RoboADS(
            model,
            naive_suite,
            process_noise=np.diag([1e-5, 1e-5, 4e-5]),
            initial_state=np.zeros(3),
            nominal_control=np.array([0.3, 0.1]),
        )
    except ObservabilityError as exc:
        print(f"As expected, the naive mode set is rejected:\n  {exc}\n")

    # The fix: group GPS + magnetometer into one logical reference unit.
    gps_mag = SensorGroup("gps+mag", [gps, magnetometer])
    suite = SensorSuite([gps_mag, odometry])
    detector = RoboADS(
        model,
        suite,
        process_noise=np.diag([1e-5, 1e-5, 4e-5]),
        initial_state=np.zeros(3),
        modes=[Mode.for_suite(suite, ("gps+mag",)), Mode.for_suite(suite, ("odometry",))],
        nominal_control=np.array([0.3, 0.1]),
    )
    print(f"Detector built with modes: {[m.name for m in detector.engine.modes]}\n")

    # Feed it a synthetic drive with an odometry fault appearing at t = 5 s.
    rng = np.random.default_rng(3)
    x_true = np.zeros(3)
    control = np.array([0.3, 0.15])
    q_sigma = np.sqrt([1e-5, 1e-5, 4e-5])
    for k in range(1, 101):
        x_true = model.normalize_state(model.f(x_true, control) + q_sigma * rng.standard_normal(3))
        z = suite.measure(x_true, rng)
        if k * model.dt >= 5.0:  # odometry workflow starts lying
            z[suite.slice_of("odometry")] += np.array([0.15, -0.1, 0.0])
        report = detector.step(control, z)
        if report.flagged_sensors:
            print(
                f"t={k * model.dt:.1f}s  misbehaving workflow(s): "
                f"{sorted(report.flagged_sensors)}; "
                f"d̂s = {np.round(report.sensor_anomaly('odometry'), 3)}"
            )
            break
    else:
        raise SystemExit("fault was not detected — unexpected")


if __name__ == "__main__":
    main()
