"""A full Khepera mission under a combined sensor + actuator attack.

Reproduces the paper's Fig 6 storyline (scenario #8): the robot plans a
path with RRT*, tracks it with PID on live IPS data, an IPS logic bomb
fires at 4 s and a wheel-controller logic bomb at 10 s. The script prints
a timeline of what the detector saw, an ASCII map of the arena with the
driven trajectory, and the quantified anomaly vectors.

Run with::

    python examples/khepera_mission.py
"""

import numpy as np

from repro import khepera_rig, khepera_scenarios, run_scenario
from repro.experiments.common import KHEPERA_SENSOR_ORDER, condition_label


def ascii_map(rig, trace, width: int = 56, height: int = 24) -> str:
    """Render the arena, obstacles, and the driven trajectory."""
    xmin, ymin, xmax, ymax = rig.mission.world.bounds
    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - xmin) / (xmax - xmin) * (width - 1))
        row = int((ymax - y) / (ymax - ymin) * (height - 1))
        return min(max(row, 0), height - 1), min(max(col, 0), width - 1)

    # Obstacles.
    for row in range(height):
        for col in range(width):
            x = xmin + (col + 0.5) / width * (xmax - xmin)
            y = ymax - (row + 0.5) / height * (ymax - ymin)
            if not rig.mission.world.point_free((x, y)):
                grid[row][col] = "#"
    # Trajectory: '.' clean, '!' while any misbehavior active.
    for k, state in enumerate(trace.true_states):
        row, col = cell(state[0], state[1])
        attacked = bool(trace.truth_sensors[k]) or trace.truth_actuator[k]
        grid[row][col] = "!" if attacked else "."
    # Start and goal.
    row, col = cell(*rig.mission.start_pose[:2])
    grid[row][col] = "S"
    row, col = cell(*rig.mission.goal)
    grid[row][col] = "G"
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(r) + "|" for r in grid] + [border])


def main() -> None:
    rig = khepera_rig()
    scenario = next(s for s in khepera_scenarios() if s.number == 8)
    print(f"Scenario #8: {scenario.name}")
    print(f"  {scenario.detail}\n")

    result = run_scenario(rig, scenario, seed=42, stop_at_goal=False)
    trace = result.trace

    print(ascii_map(rig, trace))
    print("\nDetector timeline (changes only):")
    previous = None
    for k, report in enumerate(trace.reports):
        sensor_label = condition_label(report.flagged_sensors, KHEPERA_SENSOR_ORDER)
        actuator_label = "A1" if report.actuator_alarm else "A0"
        state = (sensor_label, actuator_label, report.selected_mode)
        if state != previous:
            print(
                f"  t={trace.times[k]:6.2f}s  condition {sensor_label}/{actuator_label}"
                f"  (estimating under mode {report.selected_mode})"
            )
            previous = state

    # Quantification, as the paper reports for Fig 6.
    window = [
        r.sensor_anomaly("ips")[0]
        for k, r in enumerate(trace.reports)
        if 5.0 <= trace.times[k] < 10.0 and r.sensor_anomaly("ips") is not None
    ]
    print(f"\nEstimated IPS x corruption over 5-10 s: "
          f"{np.mean(window):+.4f} ± {np.std(window):.4f} m (injected +0.070 m)")

    diffs = [
        r.actuator_anomaly[1] - r.actuator_anomaly[0]
        for k, r in enumerate(trace.reports)
        if trace.times[k] >= 10.5
    ]
    print(f"Estimated wheel-speed differential after 10 s: "
          f"{np.mean(diffs):+.4f} m/s (injected +0.080 m/s = 12000 speed units)")
    print(f"\n{result.summary()}")


if __name__ == "__main__":
    main()
