"""Quickstart: detect an IPS spoofing attack on the Khepera in ~30 lines.

Run with::

    python examples/quickstart.py
"""

from repro import khepera_rig, khepera_scenarios, run_scenario


def main() -> None:
    # The Khepera III prototype from the paper: differential drive, three
    # sensing workflows (IPS, wheel encoder, LiDAR), RRT* + PID mission.
    rig = khepera_rig()

    # Table II scenario #4: a fake IPS base station overpowers the authentic
    # signal and shifts the reported X position by -0.1 m from t = 4 s.
    scenario = next(s for s in khepera_scenarios() if s.number == 4)
    print(f"Scenario: {scenario.name} — {scenario.detail}")

    result = run_scenario(rig, scenario, seed=7)
    print(result.summary())

    # Walk the reports: when did RoboADS first blame the IPS?
    for k, report in enumerate(result.trace.reports):
        if report.flagged_sensors == frozenset({"ips"}):
            t = result.trace.times[k]
            estimate = report.sensor_anomaly("ips")
            print(f"t={t:.2f}s  confirmed IPS misbehavior;"
                  f" estimated corruption x={estimate[0]:+.3f} m (injected -0.100 m)")
            break

    delays = result.delays_for("sensor")
    if delays and delays[0].delay is not None:
        print(f"Detection delay: {delays[0].delay:.2f} s after the attack trigger")


if __name__ == "__main__":
    main()
