#!/usr/bin/env python
"""Run the perf smoke benchmarks and record the means to BENCH_perf.json.

Usage (from the repository root)::

    python scripts/bench_smoke.py [extra pytest args...]

Runs every ``bench_smoke``-marked benchmark in ``benchmarks/bench_perf.py``,
``benchmarks/bench_campaign.py``, ``benchmarks/bench_chaos.py``,
``benchmarks/bench_serve.py`` and (on multi-core machines)
``benchmarks/bench_parallel.py`` via pytest-benchmark and reduces the
statistics to a small committed JSON file, so the repository carries a
recorded perf trajectory across PRs: mean/stddev iteration latency per rig
and per mode-set, serial-vs-parallel evaluation throughput, fused-vs-serial
streaming fleet throughput, plus the pinned pre-optimization baseline the
current numbers are compared against. A ``headline`` block repeats the
multiples the prose docs quote, computed from the same run. The metadata
block records ``cpu_count`` and the platform, because the parallel speedups
are only interpretable relative to the cores they ran on.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO / "BENCH_perf.json"

#: Mean iteration latency (seconds) measured at the pre-workspace seed
#: revision on the reference machine — the "before" of the shared-workspace
#: optimization (see docs/PERFORMANCE.md). Kept pinned so regressions are
#: judged against a fixed point, not a moving average.
PRE_CHANGE_BASELINE_S = {
    "test_khepera_iteration_throughput": 2.9258e-3,
    "test_khepera_complete_modeset_throughput": 6.2906e-3,
    "test_tamiya_iteration_throughput": 2.9669e-3,
    # Batched replay (16 missions x 25 steps) before the stacked
    # (mission, mode) lattice, measured at the back-to-back serial replay.
    "test_batched_replay_throughput": 0.395,
}


def main(argv: list[str]) -> int:
    # On a single core the process-pool benchmarks can only measure pool
    # overhead — skip the whole ``parallel`` group and record why, instead
    # of committing numbers that read as a parallelization regression.
    skip_parallel = os.cpu_count() == 1
    bench_files = [
        str(REPO / "benchmarks" / "bench_perf.py"),
        str(REPO / "benchmarks" / "bench_campaign.py"),
        str(REPO / "benchmarks" / "bench_chaos.py"),
        str(REPO / "benchmarks" / "bench_serve.py"),
    ]
    if not skip_parallel:
        bench_files.append(str(REPO / "benchmarks" / "bench_parallel.py"))
    with tempfile.TemporaryDirectory() as tmp:
        raw = pathlib.Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *bench_files,
            "-m",
            "bench_smoke",
            "-q",
            "-p",
            "no:cacheprovider",
            f"--benchmark-json={raw}",
            *argv,
        ]
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        proc = subprocess.run(cmd, cwd=REPO, env=env)
        if proc.returncode != 0:
            return proc.returncode
        data = json.loads(raw.read_text())

    results = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"]
        stats = bench["stats"]
        entry = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "group": bench.get("group"),
        }
        extra = bench.get("extra_info") or {}
        for key in (
            "workers",
            "cpu_count",
            "baseline",
            "cells",
            "cells_per_s",
            "cache_hit_rate",
            "crashes_survived",
            "messages_replayed",
            "recovery_latency_mean_s",
            "recovery_latency_max_s",
            "replayed_per_s",
            "sessions",
            "messages",
            "messages_per_s",
        ):
            if key in extra:
                entry[key] = extra[key]
        baseline = PRE_CHANGE_BASELINE_S.get(name)
        if baseline is not None:
            entry["pre_change_mean_s"] = baseline
            entry["speedup_vs_pre_change"] = baseline / stats["mean"]
        results[name] = entry

    # Serial-vs-parallel speedups: parallel benchmarks link their serial
    # counterpart by name via extra_info["baseline"].
    for entry in results.values():
        reference = results.get(entry.get("baseline"))
        if reference is not None:
            entry["speedup_vs_serial"] = reference["mean_s"] / entry["mean_s"]

    # Headline numbers quoted by the prose docs (ROADMAP.md,
    # docs/PERFORMANCE.md, docs/STREAMING.md, README.md). Written from the
    # same run as the per-benchmark results so the quoted multiples can
    # never drift from the committed measurements again — update the docs
    # from this block, not from memory.
    headline = {}
    replay = results.get("test_batched_replay_throughput", {})
    if "speedup_vs_pre_change" in replay:
        headline["batched_replay_speedup_vs_pre_change"] = replay[
            "speedup_vs_pre_change"
        ]
    for n in (1, 8, 64):
        fused = results.get(f"test_serve_fused_throughput[{n}]", {})
        if "speedup_vs_serial" in fused:
            headline[f"fused_streaming_speedup_{n}_sessions"] = fused[
                "speedup_vs_serial"
            ]
        if "messages_per_s" in fused:
            headline[f"fused_streaming_messages_per_s_{n}_sessions"] = fused[
                "messages_per_s"
            ]

    payload = {
        "headline": headline,
        "datetime": data.get("datetime"),
        "machine": data.get("machine_info", {}).get("node"),
        "python": data.get("machine_info", {}).get("python_version"),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "processor": platform.processor() or platform.machine(),
        "comment": (
            "Mean detector iteration latency per rig/mode-set plus "
            "serial-vs-parallel evaluation throughput; pre_change_mean_s "
            "pins the pre-shared-workspace seed revision measured on the "
            "reference machine; speedup_vs_serial compares each parallel "
            "benchmark to its serial baseline on this machine's cpu_count "
            "(docs/PERFORMANCE.md). The campaign group records the "
            "incremental runner's compute throughput (cells_per_s, cold) "
            "and cache-lookup overhead (warm, cache_hit_rate 1.0) — see "
            "docs/CAMPAIGNS.md. The chaos group records crash-recovery "
            "latency and journal-replay throughput for the sharded fleet "
            "under a kill-every-worker schedule (docs/STREAMING.md). The "
            "serve group records streaming fleet throughput, fused vs "
            "serial session stepping (docs/STREAMING.md § fused "
            "streaming); headline holds the doc-quoted multiples from "
            "this same run."
        ),
        "results": results,
    }
    if skip_parallel:
        payload["skipped_groups"] = {
            "parallel": {
                "skipped_reason": (
                    "cpu_count == 1: the process pool can only add overhead "
                    "on a single core, so serial-vs-parallel numbers would "
                    "read as a regression rather than a measurement"
                )
            }
        }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
