#!/usr/bin/env python
"""Run the perf smoke benchmarks and record the means to BENCH_perf.json.

Usage (from the repository root)::

    python scripts/bench_smoke.py [extra pytest args...]

Runs every ``bench_smoke``-marked benchmark in ``benchmarks/bench_perf.py``
via pytest-benchmark and reduces the statistics to a small committed JSON
file, so the repository carries a recorded perf trajectory across PRs:
mean/stddev iteration latency per rig and per mode-set, plus the pinned
pre-optimization baseline the current numbers are compared against.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO / "BENCH_perf.json"

#: Mean iteration latency (seconds) measured at the pre-workspace seed
#: revision on the reference machine — the "before" of the shared-workspace
#: optimization (see docs/PERFORMANCE.md). Kept pinned so regressions are
#: judged against a fixed point, not a moving average.
PRE_CHANGE_BASELINE_S = {
    "test_khepera_iteration_throughput": 2.9258e-3,
    "test_khepera_complete_modeset_throughput": 6.2906e-3,
    "test_tamiya_iteration_throughput": 2.9669e-3,
}


def main(argv: list[str]) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        raw = pathlib.Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(REPO / "benchmarks" / "bench_perf.py"),
            "-m",
            "bench_smoke",
            "-q",
            "-p",
            "no:cacheprovider",
            f"--benchmark-json={raw}",
            *argv,
        ]
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        proc = subprocess.run(cmd, cwd=REPO, env=env)
        if proc.returncode != 0:
            return proc.returncode
        data = json.loads(raw.read_text())

    results = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"]
        stats = bench["stats"]
        entry = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "group": bench.get("group"),
        }
        baseline = PRE_CHANGE_BASELINE_S.get(name)
        if baseline is not None:
            entry["pre_change_mean_s"] = baseline
            entry["speedup_vs_pre_change"] = baseline / stats["mean"]
        results[name] = entry

    payload = {
        "datetime": data.get("datetime"),
        "machine": data.get("machine_info", {}).get("node"),
        "python": data.get("machine_info", {}).get("python_version"),
        "comment": (
            "Mean detector iteration latency per rig/mode-set; "
            "pre_change_mean_s pins the pre-shared-workspace seed revision "
            "measured on the reference machine (docs/PERFORMANCE.md)."
        ),
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
