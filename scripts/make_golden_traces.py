#!/usr/bin/env python
"""Regenerate the golden mission archives under tests/golden/.

Run this ONLY when a numerical change is intentional (e.g. a deliberate
algorithm fix); commit the refreshed archives together with the change that
caused the drift so `tests/test_golden_trace.py` stays green.

Usage:  PYTHONPATH=src python scripts/make_golden_traces.py
"""

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.golden import GOLDEN_MISSIONS, golden_mission, save_golden  # noqa: E402


def main() -> None:
    out_dir = Path(__file__).resolve().parent.parent / "tests" / "golden"
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in GOLDEN_MISSIONS:
        arrays = golden_mission(name)
        path = out_dir / f"{name}_200.npz"
        save_golden(path, arrays)
        n = arrays["state_estimate"].shape[0]
        alarms = int(arrays["flagged"].any(axis=1).sum() + arrays["actuator_alarm"].sum())
        print(f"wrote {path} ({n} steps, {alarms} alarm steps)")


if __name__ == "__main__":
    main()
