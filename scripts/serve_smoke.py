#!/usr/bin/env python
"""Tier-2 smoke check: the streaming layer must equal batch, quickly.

Usage (from the repository root)::

    python scripts/serve_smoke.py [--duration S] [--robots N]

Runs one short Khepera mission and pushes it through every streaming
surface, enforcing the acceptance criteria from docs/STREAMING.md:

* a :class:`~repro.serve.session.DetectorSession` fed the mission
  message-by-message is bit-identical to the batch replay reports,
* interrupting the stream with checkpoint → pickle → restore into a fresh
  detector (worker migration) changes nothing,
* a :class:`~repro.serve.service.FleetService` hosting N concurrent
  sessions — some with stale redeliveries in their streams — reproduces
  the same reports for every robot, with backpressure engaged on its
  bounded ingest queues,
* the whole check finishes in under 60 seconds.

Exit status is non-zero on any violation, so CI can gate on it.
``tests/test_serve_smoke.py`` runs a scaled-down variant as part of tier-1.
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.eval.runner import run_scenario  # noqa: E402
from repro.eval.session_replay import report_drift, stream_trace  # noqa: E402
from repro.robots.khepera import khepera_rig  # noqa: E402
from repro.serve import DetectorSession, FleetService, trace_messages  # noqa: E402

TIME_BUDGET_S = 60.0
QUEUE_CAPACITY = 4
CHECKPOINT_EVERY = 10


async def _run_fleet(rig, messages, n_robots: int):
    """Host *n_robots* concurrent sessions over the same mission stream.

    Odd-indexed robots get a dirty stream (every fourth message redelivered
    two iterations late), so the fleet exercises the drop-stale ingest path
    alongside the clean one.
    """
    service = FleetService(queue_capacity=QUEUE_CAPACITY)
    streams = {}
    for i in range(n_robots):
        robot_id = f"robot-{i}"
        stream = []
        for k, message in enumerate(messages):
            stream.append(message)
            if i % 2 == 1 and k >= 2 and k % 4 == 2:
                stream.append(messages[k - 2])  # stale redelivery
        streams[robot_id] = stream
        await service.open_session(robot_id, rig.detector())

    async def produce(robot_id):
        for message in streams[robot_id]:
            await service.submit(robot_id, message)

    await asyncio.gather(*(produce(robot_id) for robot_id in streams))
    return await service.close_all()


def main(argv: list[str] | None = None) -> int:
    """Run the streaming smoke; return 0 when every surface is bit-exact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=5.0, help="mission seconds")
    parser.add_argument("--robots", type=int, default=8, help="fleet size")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    failures: list[str] = []

    rig = khepera_rig()
    rig.plan_path(0)
    result = run_scenario(
        rig, None, seed=2024, duration=args.duration, stop_at_goal=False
    )
    trace, batch_reports = result.trace, result.reports
    n = len(batch_reports)

    streamed = stream_trace(rig.detector, trace)
    drift = report_drift(streamed, batch_reports, atol=0.0)
    if drift:
        failures.append(f"streaming != batch: {drift[:3]}")

    resumed = stream_trace(rig.detector, trace, checkpoint_every=CHECKPOINT_EVERY)
    drift = report_drift(resumed, batch_reports, atol=0.0)
    if drift:
        failures.append(
            f"checkpoint/restore every {CHECKPOINT_EVERY} perturbed the stream: {drift[:3]}"
        )

    messages = list(trace_messages(trace))
    fleet = asyncio.run(_run_fleet(rig, messages, args.robots))
    max_depth = max(r.max_queue_depth for r in fleet.values())
    suppressed = sum(
        r.ingest.duplicates + r.ingest.dropped_stale for r in fleet.values()
    )
    for robot_id, robot in fleet.items():
        drift = report_drift(robot.reports, batch_reports, atol=0.0)
        if drift:
            failures.append(f"fleet {robot_id} != batch: {drift[:3]}")
        if robot.ingest.processed != n:
            failures.append(
                f"fleet {robot_id} processed {robot.ingest.processed} of {n} messages"
            )
    if max_depth != QUEUE_CAPACITY:
        failures.append(
            f"backpressure never engaged (max queue depth {max_depth}, "
            f"capacity {QUEUE_CAPACITY})"
        )
    if suppressed == 0:
        failures.append("dirty streams suppressed nothing: redelivery path untested")

    # A resumed serial session must also sequence from the checkpoint: a
    # message replayed from before the cut is suppressed, not reprocessed.
    session = DetectorSession(rig.detector())
    for message in messages[: n // 2]:
        session.process(message)
    migrated = DetectorSession.resume(rig.detector(), session.checkpoint())
    if migrated.process(messages[0]) is not None:
        failures.append("restored session reprocessed a pre-checkpoint message")

    elapsed = time.perf_counter() - start
    print(f"mission: {n} iterations, fleet of {args.robots} sessions")
    print(f"fleet max queue depth: {max_depth} (capacity {QUEUE_CAPACITY})")
    print(f"stale redeliveries suppressed across fleet: {suppressed}")
    print(f"elapsed: {elapsed:.1f}s (budget {TIME_BUDGET_S:.0f}s)")

    if elapsed > TIME_BUDGET_S:
        failures.append(f"smoke took {elapsed:.1f}s > {TIME_BUDGET_S:.0f}s budget")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: streaming smoke passed (streaming == batch == resumed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
