#!/usr/bin/env python
"""Tier-2 smoke check: crash recovery must be bit-exact, quickly.

Usage (from the repository root)::

    python scripts/chaos_smoke.py [--duration S] [--robots N]

Runs one short Khepera mission, fans it out to a fleet of sessions, and
drives the sharded multi-process layer through the acceptance bar of
docs/STREAMING.md's crash-recovery section:

* a :class:`~repro.serve.shard.ShardManager` with 4 workers loses 2 of them
  to SIGKILL mid-stream and must still produce per-session reports and
  end-of-run snapshot bytes bit-identical to an uninterrupted single-process
  :class:`~repro.serve.service.FleetService` run,
* a seeded :class:`~repro.serve.chaos.ChaosMonkey` schedule that kills
  *every* worker at least once (plus randomized hangs and slowdowns) must
  recover to the same bit-exact results, with the
  :class:`~repro.serve.chaos.ChaosReport` accounting for every strike,
* the whole check finishes in under 60 seconds.

Exit status is non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.eval.runner import run_scenario  # noqa: E402
from repro.eval.session_replay import report_drift  # noqa: E402
from repro.robots.khepera import khepera_rig  # noqa: E402
from repro.serve import (  # noqa: E402
    ChaosConfig,
    DetectorSession,
    FleetService,
    ShardManager,
    SnapshotSpool,
    SupervisorConfig,
    run_chaos_fleet,
    trace_messages,
)

TIME_BUDGET_S = 60.0
WORKERS = 4
SPOOL_EVERY = 10
#: Short heartbeat/timeout so injected faults cost tenths of a second.
FAST = SupervisorConfig(heartbeat_interval=0.05, heartbeat_timeout=0.5)


async def _fleet_reference(rig, streams):
    """The uninterrupted single-process FleetService run to beat."""
    service = FleetService()
    for robot_id in streams:
        await service.open_session(robot_id, rig.detector())
    for robot_id, messages in streams.items():
        for message in messages:
            await service.submit(robot_id, message)
    return await service.close_all()


def _snapshot_reference(rig, streams):
    """Per-robot end-of-run snapshot bytes from uninterrupted sessions."""
    blobs = {}
    for robot_id, messages in streams.items():
        session = DetectorSession(rig.detector(), robot_id=robot_id)
        for message in messages:
            session.process(message)
        blobs[robot_id] = session.checkpoint().to_bytes()
    return blobs


def _check_parity(results, reference, blobs, label, failures):
    for robot_id, result in results.items():
        drift = report_drift(result.reports, reference[robot_id].reports, atol=0.0)
        if drift:
            failures.append(f"{label}: {robot_id} reports != fleet reference: {drift[:3]}")
        if result.final_snapshot != blobs[robot_id]:
            failures.append(f"{label}: {robot_id} end snapshot is not bit-identical")


def main(argv: list[str] | None = None) -> int:
    """Run the chaos smoke; return 0 when recovery is bit-exact in budget."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=4.0, help="mission seconds")
    parser.add_argument("--robots", type=int, default=8, help="fleet size")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    failures: list[str] = []

    rig = khepera_rig()
    rig.plan_path(0)
    result = run_scenario(rig, None, seed=2024, duration=args.duration, stop_at_goal=False)
    messages = list(trace_messages(result.trace))
    streams = {f"robot-{i}": messages for i in range(args.robots)}

    reference = asyncio.run(_fleet_reference(rig, streams))
    blobs = _snapshot_reference(rig, streams)

    # --- directed: kill 2 of 4 workers mid-stream --------------------------
    kill_at = {len(messages) // 3: 0, 2 * len(messages) // 3: 2}
    with tempfile.TemporaryDirectory() as tmp:
        with ShardManager(
            rig.detector,
            workers=WORKERS,
            spool=SnapshotSpool(pathlib.Path(tmp) / "spool"),
            spool_every=SPOOL_EVERY,
            supervisor=FAST,
        ) as manager:
            for robot_id in streams:
                manager.open_session(robot_id)
            for j in range(len(messages)):
                for robot_id in streams:
                    manager.submit(robot_id, messages[j])
                if j in kill_at:
                    manager.kill_worker(kill_at[j])
            directed = manager.close_all()
        directed_events = list(manager.supervisor.events)
    _check_parity(directed, reference, blobs, "directed-kill", failures)
    if len(directed_events) < 2:
        failures.append(f"directed-kill: expected >=2 recoveries, saw {len(directed_events)}")
    replayed = sum(r.replayed for r in directed.values())
    if replayed == 0:
        failures.append("directed-kill: nothing was replayed; recovery path untested")

    # --- seeded chaos: every worker dies at least once ---------------------
    with tempfile.TemporaryDirectory() as tmp:
        chaotic, report = run_chaos_fleet(
            rig.detector,
            streams,
            workers=WORKERS,
            spool=SnapshotSpool(pathlib.Path(tmp) / "spool"),
            spool_every=SPOOL_EVERY,
            config=ChaosConfig(seed=2024, hang_rate=0.002, slow_rate=0.005, max_strikes=4),
            supervisor_config=FAST,
            kill_every_worker=True,
        )
    _check_parity(chaotic, reference, blobs, "seeded-chaos", failures)
    killed = {strike.slot for strike in report.strikes if strike.kind == "kill"}
    if killed != set(range(WORKERS)):
        failures.append(f"seeded-chaos: kills missed workers {set(range(WORKERS)) - killed}")
    if report.crashes_survived < WORKERS:
        failures.append(
            f"seeded-chaos: {report.crashes_survived} crashes survived < {WORKERS} kills"
        )
    if report.failed_recoveries:
        failures.append(f"seeded-chaos: {report.failed_recoveries} recoveries abandoned")

    elapsed = time.perf_counter() - start
    print(f"mission: {len(messages)} iterations, fleet of {args.robots} sessions, "
          f"{WORKERS} workers")
    print(f"directed kills: {len(directed_events)} recoveries, {replayed} messages replayed")
    print(report.summary())
    print(f"elapsed: {elapsed:.1f}s (budget {TIME_BUDGET_S:.0f}s)")

    if elapsed > TIME_BUDGET_S:
        failures.append(f"smoke took {elapsed:.1f}s > {TIME_BUDGET_S:.0f}s budget")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: chaos smoke passed (crashed fleet == uninterrupted fleet, bit-exact)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
