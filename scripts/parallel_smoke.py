#!/usr/bin/env python
"""Tier-2 smoke check: parallel evaluation must equal serial, quickly.

Usage (from the repository root)::

    python scripts/parallel_smoke.py

Runs a 2-worker mini fault campaign (Table II scenario #1, dropout sweep)
and a 2-worker Monte-Carlo batch next to their serial twins and enforces
the parallel layer's acceptance criteria from docs/PERFORMANCE.md:

* every parallel cell/trial is identical to its serial counterpart
  (confusions, delays, degraded fractions, report sequences),
* the pool actually fans out (a ParallelConfig resolves >1 worker),
* the whole check finishes in under 60 seconds.

Exit status is non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.attacks.catalog import khepera_scenarios  # noqa: E402
from repro.eval.fault_campaign import run_fault_campaign  # noqa: E402
from repro.eval.parallel import ParallelConfig  # noqa: E402
from repro.eval.runner import monte_carlo  # noqa: E402
from repro.robots.khepera import khepera_rig  # noqa: E402

INTENSITIES = (0.0, 0.10)
DURATION = 5.0  # seconds of mission per trial
WORKERS = 2
TIME_BUDGET_S = 60.0


def _cell_key(cell):
    def counts(c):
        return (c.tp, c.fp, c.fn, c.tn)

    return (
        cell.scenario_number,
        cell.intensity,
        counts(cell.sensor_confusion),
        counts(cell.actuator_confusion),
        cell.mean_sensor_delay,
        cell.mean_actuator_delay,
        cell.degraded_fraction,
        cell.finite,
    )


def main() -> int:
    start = time.perf_counter()
    rig = khepera_rig()
    rig.plan_path(0)
    scenario = khepera_scenarios()[0]  # wheel-speed attack (Table II #1)
    config = ParallelConfig(workers=WORKERS)
    failures: list[str] = []

    if config.resolved_workers() != WORKERS:
        failures.append(f"ParallelConfig resolved {config.resolved_workers()} workers, wanted {WORKERS}")

    campaign_kwargs = dict(
        intensities=INTENSITIES,
        n_trials=2,
        base_seed=100,
        duration=DURATION,
        stop_at_goal=False,
    )
    serial_campaign = run_fault_campaign(rig, [scenario], **campaign_kwargs)
    parallel_campaign = run_fault_campaign(rig, [scenario], parallel=config, **campaign_kwargs)
    serial_cells = [_cell_key(c) for c in serial_campaign.cells]
    parallel_cells = [_cell_key(c) for c in parallel_campaign.cells]
    if serial_cells != parallel_cells:
        failures.append("parallel fault campaign differs from serial")
        for a, b in zip(serial_cells, parallel_cells):
            if a != b:
                failures.append(f"  serial {a} != parallel {b}")

    mc_kwargs = dict(base_seed=100, duration=DURATION, stop_at_goal=False)
    serial_mc = monte_carlo(rig, scenario, 4, **mc_kwargs)
    parallel_mc = monte_carlo(rig, scenario, 4, parallel=config, **mc_kwargs)
    for s, p in zip(serial_mc, parallel_mc):
        if repr(s.trace.reports) != repr(p.trace.reports):
            failures.append(f"parallel Monte-Carlo reports differ at seed {s.seed}")
        if [(e.channel, e.delay) for e in s.delays] != [(e.channel, e.delay) for e in p.delays]:
            failures.append(f"parallel Monte-Carlo delays differ at seed {s.seed}")

    elapsed = time.perf_counter() - start
    print(parallel_campaign.format())
    print(f"\n{len(serial_mc)} Monte-Carlo trials compared serial vs {WORKERS} workers")
    print(f"elapsed: {elapsed:.1f}s (budget {TIME_BUDGET_S:.0f}s)")

    if elapsed > TIME_BUDGET_S:
        failures.append(f"smoke took {elapsed:.1f}s > {TIME_BUDGET_S:.0f}s budget")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: parallel evaluation smoke passed (parallel == serial)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
