#!/usr/bin/env python
"""Render the campaign artifact store as a self-contained HTML dashboard.

Usage (from the repository root)::

    python scripts/make_dashboard.py [--store DIR] [--manifest FILE ...]
                                     [--bench FILE] [--out FILE]

Reads campaign manifests (by default every manifest the store has recorded;
``--manifest`` selects explicit files instead) and the committed
``BENCH_perf.json`` trajectory, and writes one static HTML file — no
server, no external assets, stdlib templating only. Sections:

* a Table II reproduction per campaign with detection cells,
* a Table IV reproduction where ``table4_setting`` cells exist,
* the fault-campaign grid (scenario x dropout intensity heat table) with
  per-channel degradation curves as inline SVG,
* rendered reports of whole-experiment cells,
* the recorded perf trajectory from ``BENCH_perf.json``,
* a cell index listing every cell id, content address and cache state.

See docs/CAMPAIGNS.md for the artifact-store layout this renders from.
"""

from __future__ import annotations

import argparse
import html
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.campaign import (  # noqa: E402
    CampaignManifest,
    ResultStore,
    campaign_report,
)
from repro.campaign.report import detection_table, fault_grid, table4_rows  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parents[1]

# Reference data-viz palette (validated ordering; see the dataviz skill's
# palette instance). Charts reference roles via CSS custom properties so the
# light/dark values swap in one place.
CSS = """
:root {
  color-scheme: light dark;
}
body {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  margin: 0;
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
}
@media (prefers-color-scheme: dark) {
  body {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --series-1: #3987e5;
    --series-2: #d95926;
  }
}
main { max-width: 72rem; margin: 0 auto; padding: 1.5rem; }
h1 { font-size: 1.4rem; }
h2 { font-size: 1.15rem; margin-top: 2.5rem; }
h3 { font-size: 1rem; color: var(--text-secondary); }
p.meta { color: var(--text-secondary); }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td {
  padding: 0.3rem 0.7rem;
  text-align: left;
  border-bottom: 1px solid var(--gridline);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 600; }
td.num { text-align: right; }
td.heat { text-align: right; min-width: 4.5rem; }
code { font-family: ui-monospace, monospace; font-size: 0.85em; }
details { margin: 0.75rem 0; }
details pre {
  overflow-x: auto;
  padding: 0.75rem;
  border: 1px solid var(--gridline);
  font-size: 0.8rem;
}
.legend { display: flex; gap: 1.25rem; margin: 0.5rem 0; color: var(--text-secondary); }
.legend .swatch {
  display: inline-block;
  width: 0.75rem; height: 0.75rem;
  border-radius: 2px;
  margin-right: 0.35rem;
  vertical-align: -1px;
}
.pending { color: var(--text-muted); }
svg text { fill: var(--text-secondary); font: 11px system-ui, sans-serif; }
svg .axis { stroke: var(--gridline); stroke-width: 1; }
svg .grid { stroke: var(--gridline); stroke-width: 1; }
"""

# Sequential blue ramp (steps 100..700) for the heat grid; the lightest step
# reads as "near zero" and recedes toward the surface.
HEAT_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
)


def esc(value) -> str:
    return html.escape(str(value), quote=True)


def heat_cell(value: float, text: str) -> str:
    """A table cell whose background encodes *value* in [0, 1]."""
    index = min(len(HEAT_RAMP) - 1, max(0, int(round(value * (len(HEAT_RAMP) - 1)))))
    color = HEAT_RAMP[index]
    # Explicit backgrounds need explicit ink: dark ramp steps get white text.
    ink = "#ffffff" if index >= 6 else "#0b0b0b"
    return (
        f'<td class="heat" style="background:{color};color:{ink}" '
        f'title="{esc(text)}">{esc(text)}</td>'
    )


def render_table(headers: list[str], rows: list[list[str]], numeric=()) -> str:
    """Plain HTML table; *numeric* column indices are right-aligned."""
    head = "".join(f"<th>{esc(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = []
        for index, cell in enumerate(row):
            if isinstance(cell, str) and cell.startswith("<td"):
                cells.append(cell)  # pre-rendered (heat) cell
            else:
                klass = ' class="num"' if index in numeric else ""
                cells.append(f"<td{klass}>{esc(cell)}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def line_chart(series: list[tuple[str, str, list[tuple[float, float]]]], y_max: float = 1.0) -> str:
    """Inline SVG line chart: series of (label, css-var, [(x, y)]) points.

    One x axis (dropout intensity), y fixed to [0, y_max]; 2px lines,
    8px markers with native ``<title>`` tooltips, hairline gridlines.
    """
    width, height = 460, 220
    left, right, top, bottom = 48, 16, 12, 34
    plot_w, plot_h = width - left - right, height - top - bottom
    xs = sorted({x for _, _, pts in series for x, _ in pts})
    if not xs:
        return ""
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0

    def sx(x: float) -> float:
        return left + (x - x_min) / span * plot_w

    def sy(y: float) -> float:
        return top + (1.0 - min(y, y_max) / y_max) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" aria-label="degradation curves">'
    ]
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = sy(frac * y_max)
        parts.append(f'<line class="grid" x1="{left}" y1="{y:.1f}" x2="{width - right}" y2="{y:.1f}"/>')
        parts.append(f'<text x="{left - 6}" y="{y + 4:.1f}" text-anchor="end">{frac * y_max:.0%}</text>')
    parts.append(f'<line class="axis" x1="{left}" y1="{top + plot_h}" x2="{width - right}" y2="{top + plot_h}"/>')
    for x in xs:
        parts.append(
            f'<text x="{sx(x):.1f}" y="{height - 14}" text-anchor="middle">{x:.0%}</text>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 2}" text-anchor="middle">dropout intensity</text>'
    )
    for label, var, pts in series:
        if not pts:
            continue
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in sorted(pts))
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="var({var})" '
            'stroke-width="2" stroke-linejoin="round"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" fill="var({var})">'
                f"<title>{esc(label)} @ {x:.0%}: {y:.1%}</title></circle>"
            )
    parts.append("</svg>")
    return "".join(parts)


def bar_chart(rows: list[tuple[str, float, str]], unit: str = "x") -> str:
    """Inline SVG horizontal bars: (label, value, tooltip) per row.

    Thin bars (18px) with a 4px-rounded data end, value as a direct label
    in ink (text never wears the series color).
    """
    if not rows:
        return ""
    bar_h, gap, left, right = 18, 10, 230, 80
    width = 560
    height = len(rows) * (bar_h + gap) + gap
    v_max = max(value for _, value, _ in rows) or 1.0
    plot_w = width - left - right
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" aria-label="perf trajectory">'
    ]
    for index, (label, value, tip) in enumerate(rows):
        y = gap + index * (bar_h + gap)
        w = max(6.0, value / v_max * plot_w)
        r = 4
        parts.append(f'<text x="{left - 8}" y="{y + bar_h - 5}" text-anchor="end">{esc(label)}</text>')
        parts.append(
            f'<path d="M{left},{y} h{w - r:.1f} a{r},{r} 0 0 1 {r},{r} '
            f'v{bar_h - 2 * r} a{r},{r} 0 0 1 -{r},{r} h-{w - r:.1f} z" '
            f'fill="var(--series-1)"><title>{esc(tip)}</title></path>'
        )
        parts.append(
            f'<text x="{left + w + 8:.1f}" y="{y + bar_h - 5}">{value:.2f}{esc(unit)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def legend(entries: list[tuple[str, str]]) -> str:
    items = "".join(
        f'<span><span class="swatch" style="background:var({var})"></span>{esc(label)}</span>'
        for label, var in entries
    )
    return f'<div class="legend">{items}</div>'


def pct(value) -> str:
    return "-" if value is None else f"{value:.2%}"


def seconds(value) -> str:
    return "-" if value is None else f"{value:.2f}s"


def detection_section(report: dict) -> str:
    """Table II reproduction: fault-free detection rows of one campaign."""
    rows = detection_table(report, intensity=0.0)
    if not rows:
        return ""
    body = [
        [
            "-" if r["scenario"] is None else str(r["scenario"]),
            r["scenario_name"],
            r["rig"],
            str(r["n_trials"]),
            pct(r["sensor"]["fpr"]),
            pct(r["sensor"]["fnr"]),
            pct(r["actuator"]["fpr"]),
            pct(r["actuator"]["fnr"]),
            seconds(r["mean_sensor_delay"]),
            seconds(r["mean_actuator_delay"]),
            "yes" if r["identified"] else "NO",
        ]
        for r in rows
    ]
    return "<h3>Detection at zero fault intensity (Table II shape)</h3>" + render_table(
        ["#", "Scenario", "Rig", "Trials", "S FPR", "S FNR", "A FPR", "A FNR",
         "S delay", "A delay", "ident."],
        body,
        numeric=(3, 4, 5, 6, 7, 8, 9),
    )


def table4_section(report: dict) -> str:
    rows = table4_rows(report)
    if not rows:
        return ""
    body = [
        [
            r["setting"],
            f"{r['empirical_variance'][0]:.3e}",
            f"{r['empirical_variance'][1]:.3e}",
            f"{r['theoretical_variance'][0]:.3e}",
            f"{r['theoretical_variance'][1]:.3e}",
            str(r["n_iterations"]),
        ]
        for r in rows
    ]
    return "<h3>Actuator-anomaly variance per reference setting (Table IV shape)</h3>" + render_table(
        ["Sensor setting", "Var Vl (emp)", "Var Vr (emp)", "Vl (filter)", "Vr (filter)", "iters"],
        body,
        numeric=(1, 2, 3, 4, 5),
    )


def fault_section(report: dict) -> str:
    """Scenario x intensity heat grid plus per-channel degradation curves."""
    grid = fault_grid(report)
    if len(grid["intensities"]) < 2:
        return ""
    headers = ["Scenario"] + [f"{i:.0%}" for i in grid["intensities"]]
    body = []
    for scenario in grid["scenarios"]:
        row = [f"#{scenario['number']} {scenario['name']}"]
        for intensity in grid["intensities"]:
            cell = grid["cells"].get(f"{scenario['number']}|{intensity}")
            if cell is None:
                row.append("<td class='heat pending'>pending</td>")
                continue
            rate = min(cell["sensor_detection_rate"], cell["actuator_detection_rate"])
            row.append(heat_cell(rate, f"{rate:.0%}"))
        body.append(row)
    curves = grid["curves"]
    chart = line_chart(
        [
            ("sensor detection", "--series-1",
             [(c["intensity"], c["detection_rate"]) for c in curves["sensor"]]),
            ("actuator detection", "--series-2",
             [(c["intensity"], c["detection_rate"]) for c in curves["actuator"]]),
        ]
    )
    return (
        "<h3>Fault campaign: worst-channel detection rate by dropout intensity</h3>"
        + render_table(headers, body)
        + "<h3>Degradation curves (mean over scenarios)</h3>"
        + legend([("sensor detection", "--series-1"), ("actuator detection", "--series-2")])
        + chart
    )


def experiment_section(report: dict) -> str:
    """Rendered reports of whole-experiment cells, collapsed by default."""
    parts = []
    for cell in report["cells"]:
        result = cell["result"] or {}
        if result.get("kind") != "experiment":
            continue
        parts.append(
            f"<details><summary><code>{esc(cell['cell_id'])}</code></summary>"
            f"<pre>{esc(result['formatted'])}</pre></details>"
        )
    if not parts:
        return ""
    return "<h3>Experiment reports</h3>" + "".join(parts)


def campaign_section(manifest: CampaignManifest, store: ResultStore) -> tuple[str, dict]:
    report = campaign_report(manifest, store)
    section = [
        f'<h2 id="campaign-{esc(report["name"])}">Campaign: {esc(report["name"])}</h2>',
        f'<p class="meta">{esc(report["description"] or "")} '
        f'— {report["cached"]}/{report["total"]} cell(s) cached.</p>',
        detection_section(report),
        table4_section(report),
        fault_section(report),
        experiment_section(report),
    ]
    return "".join(section), report


def perf_section(bench_path: pathlib.Path) -> str:
    """The committed BENCH_perf.json trajectory: speedup bars plus raw table."""
    if not bench_path.exists():
        return ""
    data = json.loads(bench_path.read_text())
    results = data.get("results", {})
    bars = []
    body = []
    for name in sorted(results):
        entry = results[name]
        mean = entry.get("mean_s")
        speedup = entry.get("speedup_vs_pre_change") or entry.get("speedup_vs_serial")
        if speedup:
            bars.append((name, float(speedup), f"{name}: {speedup:.2f}x, mean {mean:.4f}s"))
        extras = {
            k: entry[k]
            for k in ("cells", "cells_per_s", "cache_hit_rate", "workers")
            if k in entry
        }
        body.append(
            [
                name,
                entry.get("group", "-"),
                "-" if mean is None else f"{mean:.4f}",
                "-" if speedup is None else f"{speedup:.2f}x",
                str(entry.get("rounds", "-")),
                ", ".join(f"{k}={v}" for k, v in extras.items()) or "-",
            ]
        )
    return (
        "<h2 id=\"perf\">Recorded perf trajectory (BENCH_perf.json)</h2>"
        f'<p class="meta">{esc(data.get("datetime", ""))} on '
        f'{esc(data.get("machine", "?"))} ({data.get("cpu_count", "?")} cpu).</p>'
        + bar_chart(bars)
        + render_table(
            ["benchmark", "group", "mean (s)", "speedup", "rounds", "extra"],
            body,
            numeric=(2, 3, 4),
        )
    )


def index_section(reports: list[dict]) -> str:
    """Every cell of every campaign: id, kind, address, state, cost."""
    body = []
    for report in reports:
        for cell in report["cells"]:
            body.append(
                [
                    report["name"],
                    f"<td><code>{esc(cell['cell_id'])}</code></td>",
                    cell["kind"],
                    f"<td><code>{esc(cell['address'][:16])}</code></td>",
                    "cached" if cell["cached"] else "pending",
                    seconds(cell["elapsed_s"]),
                    "yes" if cell["has_telemetry"] else "-",
                ]
            )
    return "<h2 id=\"cells\">Cell index</h2>" + render_table(
        ["campaign", "cell", "kind", "address", "state", "cost", "telemetry"],
        body,
        numeric=(5,),
    )


def build(manifests: list[CampaignManifest], store: ResultStore, bench_path: pathlib.Path) -> str:
    sections = []
    reports = []
    for manifest in manifests:
        section, report = campaign_section(manifest, store)
        sections.append(section)
        reports.append(report)
    total = sum(r["total"] for r in reports)
    cached = sum(r["cached"] for r in reports)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>RoboADS campaign dashboard</title>
<style>{CSS}</style>
</head>
<body>
<main>
<h1>RoboADS campaign dashboard</h1>
<p class="meta">{len(reports)} campaign(s), {cached}/{total} cell(s) cached in
<code>{esc(store.root)}</code>. Regenerate with
<code>python scripts/make_dashboard.py</code> (docs/CAMPAIGNS.md).</p>
{''.join(sections)}
{perf_section(bench_path)}
{index_section(reports)}
</main>
</body>
</html>
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--store",
        default=str(REPO / "benchmarks" / "artifacts"),
        help="artifact store root (default: benchmarks/artifacts)",
    )
    parser.add_argument(
        "--manifest",
        action="append",
        default=None,
        metavar="FILE",
        help="manifest JSON file (repeatable; default: every manifest the store has recorded)",
    )
    parser.add_argument(
        "--bench",
        default=str(REPO / "BENCH_perf.json"),
        help="perf trajectory JSON (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="output HTML path (default: <store>/dashboard.html)",
    )
    args = parser.parse_args(argv)

    store = ResultStore(args.store)
    if args.manifest:
        manifests = [CampaignManifest.load(path) for path in args.manifest]
    else:
        manifests = store.manifests()
    if not manifests:
        print("no campaign manifests found (run a campaign or pass --manifest)", file=sys.stderr)
        return 1
    out = pathlib.Path(args.out) if args.out else pathlib.Path(args.store) / "dashboard.html"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(build(manifests, store, pathlib.Path(args.bench)))
    cells = sum(len(m) for m in manifests)
    print(f"wrote {out} ({len(manifests)} campaign(s), {cells} cell(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
