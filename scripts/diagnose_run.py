#!/usr/bin/env python
"""Diagnose one detection run: record telemetry, export JSONL + timeline.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/diagnose_run.py \
        --rig khepera --scenario 4 --seed 7 --out diagnostics/

Runs one seeded mission of the chosen rig/scenario with a
``RecordingTelemetry`` attached to the detector, then writes three
artifacts into ``--out``:

* ``<rig>_s<scenario>_seed<seed>.jsonl`` — every telemetry event
  (mode-bank, decision, availability), one JSON object per line,
* ``..._timeline.txt`` — the human-readable anomaly timeline (mode
  switches, alarm onsets/clears, degraded-delivery spans),
* ``..._timing.json`` — per-stage latency aggregates
  (linearize / mode_bank / select / decide) in the ``BENCH_perf.json``
  results shape.

The timeline is also printed to stdout. ``--scenario 0`` (or omitting it)
runs the clean mission; ``--dropout P`` additionally injects uniform
Bernoulli delivery dropout at probability ``P`` so degraded-delivery spans
show up in the timeline. ``--fused-fleet N`` additionally replays the
recorded mission through a fused ``N``-session streaming fleet
(:mod:`repro.serve.fused`) with the same recording attached, so the JSONL
carries ``fused_batch`` occupancy events and the summary reports the
batching the fused path achieved. ``docs/OBSERVABILITY.md`` walks through
reading the artifacts.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.attacks.catalog import khepera_scenarios, tamiya_scenarios  # noqa: E402
from repro.eval.runner import run_scenario  # noqa: E402
from repro.obs.export import export_run, render_timeline  # noqa: E402
from repro.obs.telemetry import RecordingTelemetry  # noqa: E402
from repro.robots.khepera import khepera_rig  # noqa: E402
from repro.robots.tamiya import tamiya_rig  # noqa: E402
from repro.sim.faults import uniform_dropout_schedule  # noqa: E402

RIGS = {"khepera": (khepera_rig, khepera_scenarios), "tamiya": (tamiya_rig, tamiya_scenarios)}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rig", choices=sorted(RIGS), default="khepera")
    parser.add_argument(
        "--scenario",
        type=int,
        default=0,
        help="Table II scenario number (0 = clean mission)",
    )
    parser.add_argument("--seed", type=int, default=7, help="trial noise seed")
    parser.add_argument(
        "--duration", type=float, default=None, help="override mission duration (s)"
    )
    parser.add_argument(
        "--dropout",
        type=float,
        default=0.0,
        help="uniform Bernoulli delivery-dropout probability (0 = no faults)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=7, help="seed of the fault streams"
    )
    parser.add_argument(
        "--fused-fleet",
        type=int,
        default=0,
        help="replay the mission through a fused streaming fleet of this "
        "many sessions, recording fused_batch occupancy events (0 = off)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("diagnostics"),
        help="output directory for the artifacts",
    )
    args = parser.parse_args(argv)

    rig_factory, scenario_factory = RIGS[args.rig]
    rig = rig_factory()
    scenario = None
    if args.scenario:
        by_number = {s.number: s for s in scenario_factory()}
        if args.scenario not in by_number:
            parser.error(
                f"unknown scenario {args.scenario} for {args.rig}: {sorted(by_number)}"
            )
        scenario = by_number[args.scenario]

    faults = None
    if args.dropout > 0.0:
        faults = uniform_dropout_schedule(
            tuple(rig.suite.names), args.dropout, seed=args.fault_seed
        )

    telemetry = RecordingTelemetry()
    result = run_scenario(
        rig,
        scenario,
        seed=args.seed,
        duration=args.duration,
        faults=faults,
        telemetry=telemetry,
    )

    if args.fused_fleet > 1:
        # Stream the recorded mission through a fused co-rigged fleet with
        # the same recording attached — the fused stepper emits one
        # fused_batch event per drain tick into the mission's JSONL.
        from repro.serve.adapter import trace_messages  # noqa: E402
        from repro.serve.fused import FusedSessionBank  # noqa: E402
        from repro.serve.session import DetectorSession  # noqa: E402

        bank = FusedSessionBank(telemetry=telemetry)
        fleet = [
            DetectorSession(rig_factory().detector(), robot_id=f"{args.rig}-{i}")
            for i in range(args.fused_fleet)
        ]
        for message in trace_messages(result.trace):
            bank.process([(session, message) for session in fleet])

    prefix = f"{args.rig}_s{args.scenario}_seed{args.seed}"
    paths = export_run(telemetry, args.out, prefix=prefix, dt=rig.model.dt)

    print(result.summary())
    bank_events = telemetry.events_of("mode_bank")
    total_fallbacks = sum(
        sum(e.solver_fallbacks.values()) for e in bank_events
    )
    hit_iterations = sum(
        1 for e in bank_events if any(e.solver_fallbacks.values())
    )
    per_mode: dict[str, int] = {}
    for e in bank_events:
        for mode, count in e.solver_fallbacks.items():
            if count:
                per_mode[mode] = per_mode.get(mode, 0) + count
    line = (
        f"solver fallbacks: {total_fallbacks} pseudo-inverse solves over "
        f"{hit_iterations}/{len(bank_events)} iterations"
    )
    if per_mode:
        detail = ", ".join(f"{m}: {c}" for m, c in sorted(per_mode.items()))
        line += f" ({detail})"
    print(line)
    fused_events = telemetry.events_of("fused_batch")
    if fused_events:
        batched = sum(e.batched for e in fused_events)
        serial = sum(e.serial_fallbacks for e in fused_events)
        kernels = sum(e.groups for e in fused_events)
        suppressed = sum(e.suppressed for e in fused_events)
        mean_width = batched / kernels if kernels else 0.0
        print(
            f"fused batches: {batched} sessions batched over {kernels} "
            f"kernel calls (mean width {mean_width:.1f}), "
            f"{serial} serial fallbacks, {suppressed} suppressed"
        )
    print()
    print(render_timeline(telemetry, dt=rig.model.dt), end="")
    print()
    for kind, path in paths.items():
        print(f"{kind:>8}: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
