#!/usr/bin/env python
"""Perf regression gate: fresh benchmarks vs the committed BENCH_perf.json.

Usage (from the repository root)::

    python scripts/check_perf.py [--threshold 0.25] [extra pytest args...]

Runs the ``perf`` and ``serve`` benchmark groups fresh (the same
``bench_smoke``-marked tests ``scripts/bench_smoke.py`` records) and
compares each mean against the corresponding entry committed in
``BENCH_perf.json``. A benchmark whose
fresh mean exceeds the committed mean by more than ``--threshold``
(default 25%) fails the gate with exit code 1; benchmarks without a
committed entry are reported but never fail (they gate only after a
``bench_smoke`` run commits their baseline).

The committed file is never rewritten — this is the read-only CI check;
refresh the baselines with ``scripts/bench_smoke.py`` when a perf change is
intentional. The gate is also wired as the opt-in ``perf_gate`` pytest
marker (``pytest -m perf_gate``), excluded from default runs alongside
``bench_smoke``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]
COMMITTED = REPO / "BENCH_perf.json"
DEFAULT_THRESHOLD = 0.25


#: Benchmark groups the gate re-measures, with the files that host them.
GATED_GROUPS = {
    "perf": "bench_perf.py",
    "serve": "bench_serve.py",
}


def run_fresh(extra_args: list[str]) -> dict[str, float]:
    """Fresh gated-group means by benchmark name, via pytest-benchmark."""
    with tempfile.TemporaryDirectory() as tmp:
        raw = pathlib.Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *(str(REPO / "benchmarks" / f) for f in GATED_GROUPS.values()),
            "-m",
            "bench_smoke",
            "-q",
            "-p",
            "no:cacheprovider",
            f"--benchmark-json={raw}",
            *extra_args,
        ]
        env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
        proc = subprocess.run(cmd, cwd=REPO, env=env)
        if proc.returncode != 0:
            raise SystemExit(proc.returncode)
        data = json.loads(raw.read_text())
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in data.get("benchmarks", [])
        if bench.get("group") in GATED_GROUPS
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression over the committed mean "
        f"(default {DEFAULT_THRESHOLD:.0%})",
    )
    args, extra = parser.parse_known_args(argv)

    if not COMMITTED.exists():
        print(f"no committed {COMMITTED.name}; run scripts/bench_smoke.py first")
        return 1
    committed = json.loads(COMMITTED.read_text()).get("results", {})

    fresh = run_fresh(extra)
    if not fresh:
        print("no fresh perf-group benchmarks were collected")
        return 1

    failures: list[str] = []
    for name in sorted(fresh):
        mean = fresh[name]
        entry = committed.get(name)
        base = entry.get("mean_s") if isinstance(entry, dict) else None
        if base is None:
            print(f"{name}: fresh {mean * 1e3:8.2f} ms (no committed baseline)")
            continue
        ratio = mean / base - 1.0
        verdict = "ok" if ratio <= args.threshold else "REGRESSION"
        print(
            f"{name}: committed {base * 1e3:8.2f} ms, "
            f"fresh {mean * 1e3:8.2f} ms ({ratio:+7.1%}) {verdict}"
        )
        if ratio > args.threshold:
            failures.append(name)

    if failures:
        print(
            f"\nperf gate FAILED: {len(failures)} benchmark(s) regressed more "
            f"than {args.threshold:.0%}: {', '.join(failures)}"
        )
        return 1
    print(f"\nperf gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
