#!/usr/bin/env python
"""Tier-2 smoke check: a small fault campaign must stay healthy and fast.

Usage (from the repository root)::

    python scripts/fault_campaign_smoke.py

Runs a 3-intensity uniform-dropout sweep (0%, 5%, 10%) of Table II
scenario #1 on the Khepera rig and enforces the robustness acceptance
criteria from docs/ROBUSTNESS.md:

* the campaign completes with no exceptions and no NaN statistics,
* the zero-intensity column is identical to the fault-free baseline
  (same confusions, zero degraded iterations),
* dropout on the testing sensor raises no false actuator alarm,
* the whole sweep finishes in under 60 seconds.

Exit status is non-zero on any violation, so CI can gate on it.
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.attacks.catalog import khepera_scenarios  # noqa: E402
from repro.eval.fault_campaign import run_fault_campaign  # noqa: E402
from repro.eval.runner import run_scenario  # noqa: E402
from repro.robots.khepera import khepera_rig  # noqa: E402

INTENSITIES = (0.0, 0.05, 0.10)
DURATION = 8.0  # seconds of mission per trial; enough to confirm detection
TIME_BUDGET_S = 60.0


def main() -> int:
    start = time.perf_counter()
    rig = khepera_rig()
    rig.plan_path(0)
    scenario = khepera_scenarios()[0]  # wheel-speed attack (Table II #1)

    campaign = run_fault_campaign(
        rig,
        [scenario],
        intensities=INTENSITIES,
        n_trials=1,
        base_seed=100,
        sensors=["wheel_encoder"],  # the testing sensor of the default mode
        duration=DURATION,
        stop_at_goal=False,
    )
    baseline = run_scenario(rig, scenario, seed=100, duration=DURATION, stop_at_goal=False)
    elapsed = time.perf_counter() - start

    print(campaign.format())
    print(f"\nelapsed: {elapsed:.1f}s (budget {TIME_BUDGET_S:.0f}s)")

    failures: list[str] = []
    if not campaign.all_finite:
        failures.append("non-finite statistics in at least one cell")

    def counts(c):
        return (c.tp, c.fp, c.fn, c.tn)

    zero = campaign.cells_at(0.0)[0]
    if zero.degraded_fraction != 0.0:
        failures.append("zero-intensity cell ran degraded iterations")
    if counts(zero.sensor_confusion) != counts(baseline.sensor_confusion):
        failures.append("zero-intensity sensor confusion differs from fault-free baseline")
    if counts(zero.actuator_confusion) != counts(baseline.actuator_confusion):
        failures.append("zero-intensity actuator confusion differs from fault-free baseline")

    for cell in campaign.cells:
        if cell.intensity > 0.0 and cell.degraded_fraction == 0.0:
            failures.append(f"{cell.intensity:.0%} dropout produced no degraded iterations")
        # Scenario #1 is an actuator attack: sensor-channel alarms are false
        # positives, and dropout must not create them.
        if cell.sensor_confusion.fp:
            failures.append(f"{cell.intensity:.0%} cell raised a false sensor alarm")

    if elapsed > TIME_BUDGET_S:
        failures.append(f"sweep took {elapsed:.1f}s > {TIME_BUDGET_S:.0f}s budget")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: fault campaign smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
