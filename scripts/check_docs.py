#!/usr/bin/env python
"""Docs gate: markdown link validity + path drift + docstring coverage.

Three independent checks, all offline and fast (<1 s):

1. **Markdown links** — every relative link/image target in the README and
   the ``docs/`` pages must resolve to an existing file inside the repo
   (anchors are stripped; ``http(s)``/``mailto`` targets are skipped).
2. **Path references** — every ``docs/*.md`` page or ``scripts/*.py``
   script a markdown file mentions (in prose *or* in fenced command
   lines) must exist, so renamed docs and deleted scripts cannot leave
   stale instructions behind.
3. **Docstring lint** — the documented-API modules
   (``core/engine.py``, ``core/decision.py``, ``sim/faults.py``, the
   whole ``obs/``, ``serve/`` and ``campaign/`` packages and
   ``eval/session_replay.py``) must carry docstrings on the module and on
   every public class, function and method. This is the
   pydocstyle D100/D101/D102/D103 subset, reimplemented on ``ast`` so the
   gate runs without ruff/pydocstyle installed; the matching ruff config
   in ``pyproject.toml`` enforces the same subset where ruff exists.

Exit status 0 when clean, 1 with a per-finding report otherwise.
``tests/test_docs.py`` runs this as part of tier-1.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

#: Markdown files whose relative links must resolve.
MARKDOWN_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/CAMPAIGNS.md",
    "docs/OBSERVABILITY.md",
    "docs/PERFORMANCE.md",
    "docs/ROBUSTNESS.md",
    "docs/STREAMING.md",
    "docs/THEORY.md",
)

#: Modules whose public API must be fully docstringed (D100-D103 subset).
DOCSTRING_MODULES = (
    "src/repro/core/engine.py",
    "src/repro/core/decision.py",
    "src/repro/sim/faults.py",
    "src/repro/obs/__init__.py",
    "src/repro/obs/telemetry.py",
    "src/repro/obs/timing.py",
    "src/repro/obs/export.py",
    "src/repro/serve/__init__.py",
    "src/repro/serve/messages.py",
    "src/repro/serve/ingest.py",
    "src/repro/serve/session.py",
    "src/repro/serve/snapshot.py",
    "src/repro/serve/service.py",
    "src/repro/serve/adapter.py",
    "src/repro/serve/spool.py",
    "src/repro/serve/shard.py",
    "src/repro/serve/fused.py",
    "src/repro/serve/supervisor.py",
    "src/repro/serve/chaos.py",
    "src/repro/eval/session_replay.py",
    "src/repro/campaign/__init__.py",
    "src/repro/campaign/hashing.py",
    "src/repro/campaign/manifest.py",
    "src/repro/campaign/cells.py",
    "src/repro/campaign/store.py",
    "src/repro/campaign/runner.py",
    "src/repro/campaign/report.py",
)

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions ([id]: target) are rare here and intentionally not parsed.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def check_markdown_links(repo: pathlib.Path = REPO) -> list[str]:
    """Return one finding per broken relative link in :data:`MARKDOWN_FILES`."""
    findings: list[str] = []
    for rel in MARKDOWN_FILES:
        path = repo / rel
        if not path.is_file():
            findings.append(f"{rel}: file listed in MARKDOWN_FILES is missing")
            continue
        in_fence = False
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
            if in_fence:
                continue
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    findings.append(f"{rel}:{lineno}: broken link -> {target}")
    return findings


# Repo paths under docs/ and scripts/ mentioned anywhere in a page —
# backticked prose and fenced command lines alike. Wildcard references
# (e.g. ``benchmarks/results/*.txt``) fall outside the charset on purpose.
_PATH_REF_RE = re.compile(r"\b(?:docs|scripts)/[A-Za-z0-9_\-][A-Za-z0-9_\-./]*\.(?:md|py)\b")


def check_path_references(repo: pathlib.Path = REPO) -> list[str]:
    """Return one finding per mention of a nonexistent docs page or script.

    Unlike :func:`check_markdown_links` this scans *all* text including
    code fences, because stale command lines (``python scripts/gone.py``)
    are exactly the drift this catches; paths are resolved from the repo
    root, which is how every page in :data:`MARKDOWN_FILES` writes them.
    """
    findings: list[str] = []
    for rel in MARKDOWN_FILES:
        path = repo / rel
        if not path.is_file():
            continue  # already reported by check_markdown_links
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for match in _PATH_REF_RE.finditer(line):
                if not (repo / match.group(0)).is_file():
                    findings.append(
                        f"{rel}:{lineno}: reference to nonexistent {match.group(0)}"
                    )
    return findings


def _is_property_accessor(node: ast.FunctionDef) -> bool:
    """True for ``@x.setter`` / ``@x.deleter`` bodies (documented on the getter)."""
    for deco in node.decorator_list:
        if isinstance(deco, ast.Attribute) and deco.attr in ("setter", "deleter"):
            return True
    return False


def _missing_docstrings(tree: ast.Module, rel: str) -> list[str]:
    findings: list[str] = []
    if ast.get_docstring(tree) is None:
        findings.append(f"{rel}:1: D100 missing module docstring")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue  # privacy is inherited: skip the whole subtree
                if ast.get_docstring(child) is None:
                    findings.append(
                        f"{rel}:{child.lineno}: D101 missing docstring on "
                        f"class {prefix}{child.name}"
                    )
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    child.name.startswith("_")  # private and dunders
                    or _is_property_accessor(child)
                    or ast.get_docstring(child) is not None
                ):
                    continue
                code = "D102" if prefix else "D103"
                kind = "method" if prefix else "function"
                findings.append(
                    f"{rel}:{child.lineno}: {code} missing docstring on "
                    f"{kind} {prefix}{child.name}"
                )

    visit(tree, "")
    return findings


def check_docstrings(repo: pathlib.Path = REPO) -> list[str]:
    """Return one finding per missing public docstring in :data:`DOCSTRING_MODULES`."""
    findings: list[str] = []
    for rel in DOCSTRING_MODULES:
        path = repo / rel
        if not path.is_file():
            findings.append(f"{rel}: file listed in DOCSTRING_MODULES is missing")
            continue
        tree = ast.parse(path.read_text(), filename=rel)
        findings.extend(_missing_docstrings(tree, rel))
    return findings


def main(argv: list[str] | None = None) -> int:
    """Run both checks and print a report; return 0 when everything is clean."""
    del argv  # no options yet; kept for symmetry with the other CLIs
    findings = check_markdown_links() + check_path_references() + check_docstrings()
    if findings:
        print(f"check_docs: {len(findings)} finding(s)")
        for finding in findings:
            print(f"  {finding}")
        return 1
    n_md, n_py = len(MARKDOWN_FILES), len(DOCSTRING_MODULES)
    print(f"check_docs: OK ({n_md} markdown files, {n_py} python modules)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
